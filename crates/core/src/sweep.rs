//! The Pareto sweep driver: one worker pool for the full
//! `(distribution × threshold × run)` grid.
//!
//! Every figure of the paper is some slice of this grid — Fig. 3 alone is
//! 3 distributions × 14 WMED targets × `runs` independent CGP runs.
//! Before this module each figure binary looped over distributions and
//! called [`evolve_circuits`](crate::evolve_circuits) once per
//! distribution, which meant one pool tear-down per distribution and, far
//! worse, one freshly built [`CircuitEvaluator`] per *task* (the evaluator's
//! exhaustive enumeration dwarfs the cost of small CGP runs).
//! [`run_sweep`] instead:
//!
//! * builds each [`CircuitEvaluator`] **once** per `(width, signed, pmf)` and
//!   shares it across every threshold and run of that distribution via
//!   [`Arc`] (both for the Eq. 1 fitness and the post-hoc statistics);
//! * flattens the whole grid into one task list served by a single
//!   [`apx_pool`] pool, so threads stay busy across distribution
//!   boundaries instead of draining at each one;
//! * records throughput ([`SweepStats`]: wall time, fitness evaluations
//!   per second, thread count) so the performance trajectory of the sweep
//!   layer is tracked release over release (`results/BENCH_sweep.json`).
//!
//! Results are deterministic in the master seed regardless of thread
//! count: per-task RNG streams derive from `(seed, distribution,
//! threshold, run)`, never from scheduling.

use crate::cache::{task_key, CacheKey, SweepCache};
use crate::flow::{
    evolve_one, run_tasks, seed_circuit, task_seed, validate_config, EvolvedCircuit, FlowConfig,
};
use crate::library::{ComponentLibrary, PrunePolicy, RescoredLibrary};
use crate::CoreError;
use apx_approxlib::MultiplierLibrary;
use apx_arith::Operator;
use apx_cgp::Chromosome;
use apx_dist::Pmf;
use apx_gates::Netlist;
use apx_metrics::{CircuitEvaluator, ErrorStats};
use apx_rng::Xoshiro256;
use apx_techlib::{area_of, estimate_under_pmf, CircuitEstimate, TechLibrary, DEFAULT_CLOCK_MHZ};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// One named input distribution of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepDist {
    /// Display name (`"D1"`, `"D2"`, `"Du"`, a measured-source tag, …).
    pub name: String,
    /// The distribution itself.
    pub pmf: Pmf,
}

impl SweepDist {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: impl Into<String>, pmf: Pmf) -> Self {
        SweepDist { name: name.into(), pmf }
    }
}

/// One shard of a sweep grid: this process computes every task whose
/// index in the flat deterministic task list satisfies
/// `index % count == shard.index`.
///
/// The task list is flattened in `(distribution, threshold, run)` order
/// and is identical for every participant, so `n` processes (or machines)
/// each running one shard of `n` against a shared
/// [`cache_dir`](SweepConfig::cache_dir) together cover the grid exactly
/// once. Striding — rather than contiguous ranges — spreads the expensive
/// high-threshold tasks evenly across shards. A final unsharded run then
/// assembles the full result from cache hits alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shard {
    /// This process's shard, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards the grid is split into.
    pub count: usize,
}

/// Component-library mode of a sweep ([`crate::library`]): how
/// [`run_sweep`] may reuse circuits built by *other* explorations.
///
/// An empty library (no directory, nothing scanned, no conventional
/// entries) is a guaranteed no-op: results are bit-identical to running
/// with `SweepConfig::library = None`.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryConfig {
    /// Cache directory to harvest candidates from (usually a previous
    /// run's [`SweepConfig::cache_dir`], possibly populated under
    /// different distributions). `None` scans nothing.
    pub dir: Option<PathBuf>,
    /// Also ingest the conventional designs for the sweep's operator as
    /// candidates: the [`apx_approxlib`] multipliers (truncated,
    /// broken-array, zero-guarded) for `Mul`, the approximate adders of
    /// `apx_arith::adders_approx` (lower-OR, truncated) for unsigned
    /// `Add`. Operators without a conventional family (MACs, signed
    /// adders) ingest nothing.
    pub conventional: bool,
    /// Take a re-scored candidate directly when it already meets the
    /// task's threshold (counted as `library_hits`). With `false` the
    /// library only warm-starts evolutions — the refinement mode where
    /// feasible candidates become initial CGP parents and are improved
    /// further (counted as `seeded_evolutions` when a seed wins).
    pub take_hits: bool,
    /// Maximum library candidates offered as seeds to one evolution.
    pub max_seeds: usize,
    /// Skip re-scoring candidates that `apx_verify`'s static bound
    /// analysis proves irrelevant to this sweep — provably unable to meet
    /// the loosest threshold *and* provably out-ranked by at least
    /// `max_seeds` alternatives ([`ComponentLibrary::rescore_pruned`]).
    /// Results are bit-identical either way; pruning only saves
    /// exhaustive statistics passes on large libraries.
    pub prune: bool,
    /// Collapse semantically equivalent candidates after the structural
    /// dedup ([`ComponentLibrary::dedup_semantic`]): entries proven (by
    /// `apx_verify`'s canonical functional digest) to compute the same
    /// function are reduced to the selection-preferred member, counted
    /// as `library_semantic_dups`. Direct hits are provably unchanged
    /// (equivalent candidates re-score identically); only redundant seed
    /// slots are freed for functionally distinct candidates.
    pub semantic_dedup: bool,
}

impl Default for LibraryConfig {
    /// Hits taken, up to 4 seeds (one per default-λ offspring lineage),
    /// bound-based pruning on, semantic dedup on, no directory, no
    /// conventional entries.
    fn default() -> Self {
        LibraryConfig {
            dir: None,
            conventional: false,
            take_hits: true,
            max_seeds: 4,
            prune: true,
            semantic_dedup: true,
        }
    }
}

/// Configuration of a full Pareto sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepConfig {
    /// The distributions to sweep (each gets one shared evaluator).
    pub distributions: Vec<SweepDist>,
    /// Everything else — thresholds, CGP knobs, seed, thread count —
    /// shared with the single-distribution flow.
    pub flow: FlowConfig,
    /// Content-addressed result cache directory ([`crate::cache`]):
    /// completed tasks are stored there as they finish and matching tasks
    /// are loaded instead of recomputed. `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Restrict this run to one shard of the task grid. `None` runs every
    /// task.
    pub shard: Option<Shard>,
    /// Component-library mode ([`crate::library`]): reuse circuits
    /// evolved by previous (differently-distributed) explorations, either
    /// directly or as CGP population seeds. `None` disables the library.
    pub library: Option<LibraryConfig>,
}

/// One completed `(distribution, threshold, run)` task.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// Name of the distribution the circuit was evolved under.
    pub dist: String,
    /// Index of that distribution in [`SweepConfig::distributions`].
    pub dist_index: usize,
    /// The evolved circuit with its full evaluation.
    pub circuit: EvolvedCircuit,
}

/// Throughput of a sweep — the numbers `results/BENCH_sweep.json` tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepStats {
    /// Wall-clock time of the task grid, in seconds.
    pub wall_seconds: f64,
    /// Total fitness evaluations represented by the returned entries
    /// (including evaluations a previous run spent on now-cached tasks).
    pub total_evaluations: u64,
    /// Fitness evaluations actually spent by *this* run (cache misses
    /// only) — zero for a fully warm run.
    pub computed_evaluations: u64,
    /// [`SweepStats::rate`] of `computed_evaluations` over
    /// `wall_seconds`: the throughput of the work this run performed. A
    /// warm all-hits run honestly reports `0.0` instead of dividing
    /// replayed evaluations by a near-zero wall clock.
    pub evaluations_per_second: f64,
    /// Worker threads the pool ran with.
    pub threads: usize,
    /// Number of `(distribution × threshold × run)` tasks in the *full*
    /// grid: `cache_hits + library_hits + cache_misses + shard_skipped`.
    pub tasks: usize,
    /// Tasks loaded from the result cache instead of evolved.
    pub cache_hits: usize,
    /// Tasks evolved by this run (every executed task counts as a miss
    /// when caching is disabled).
    pub cache_misses: usize,
    /// Tasks excluded by the [`Shard`] filter (computed by other shards).
    pub shard_skipped: usize,
    /// Tasks satisfied by the component library instead of evolved —
    /// either an exact stored-task replay or a re-scored candidate that
    /// already met the task's threshold ([`LibraryConfig::take_hits`]).
    pub library_hits: usize,
    /// Evolved tasks whose initial CGP parent came from the library (a
    /// seed strictly beat the operator's exact seed circuit in the
    /// warm-start selection of [`apx_cgp::evolve_seeded`]).
    pub seeded_evolutions: usize,
    /// Library candidates the static bound analysis pruned before
    /// re-scoring ([`LibraryConfig::prune`]), summed over the
    /// distributions whose rankings this run actually consulted.
    pub library_pruned: usize,
    /// Library candidates removed as semantic duplicates — structurally
    /// distinct netlists proven to compute an already-present function
    /// ([`LibraryConfig::semantic_dedup`]).
    pub library_semantic_dups: usize,
}

impl SweepStats {
    /// Evaluations per second with a clamped denominator, so the rate is
    /// finite for every input — a warm all-hits or otherwise near-instant
    /// run must serialize as a JSON number, never as `inf` (which is not
    /// valid JSON and corrupted `BENCH_sweep.json` on tiny grids).
    #[must_use]
    pub fn rate(total_evaluations: u64, wall_seconds: f64) -> f64 {
        total_evaluations as f64 / wall_seconds.max(1e-9)
    }
}

/// Result of [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Every completed task, ordered by `(distribution, threshold, run)`
    /// — restricted to the configured [`Shard`] when one is set.
    pub entries: Vec<SweepEntry>,
    /// The shared evaluators, one per distribution in configuration
    /// order — reuse them for cross-distribution evaluation (the
    /// off-diagonal panels of Fig. 3) instead of rebuilding.
    pub evaluators: Vec<Arc<CircuitEvaluator>>,
    /// The exact seed's physical estimate under each distribution.
    pub seed_estimates: Vec<CircuitEstimate>,
    /// The exact seed netlist (the 100 % reference).
    pub seed_netlist: Netlist,
    /// Throughput of this sweep.
    pub stats: SweepStats,
}

impl SweepResult {
    /// The entries evolved under distribution `dist_index`, in
    /// `(threshold, run)` order.
    pub fn entries_for(&self, dist_index: usize) -> impl Iterator<Item = &SweepEntry> {
        self.entries.iter().filter(move |e| e.dist_index == dist_index)
    }

    /// The best (lowest-area) circuit per threshold for one
    /// distribution, in threshold order.
    #[must_use]
    pub fn best_per_threshold(&self, dist_index: usize) -> Vec<&EvolvedCircuit> {
        let mut best: Vec<&EvolvedCircuit> = Vec::new();
        for e in self.entries_for(dist_index) {
            let m = &e.circuit;
            match best.iter_mut().find(|b| b.threshold == m.threshold) {
                Some(b) => {
                    if m.estimate.area_um2 < b.estimate.area_um2 {
                        *b = m;
                    }
                }
                None => best.push(m),
            }
        }
        best
    }
}

/// Runs the full `(distribution × threshold × run)` grid through one
/// persistent worker pool.
///
/// Each `CircuitEvaluator` is built once per distribution and shared (via
/// [`Arc`]) by the Eq. 1 fitness of every task and by the post-hoc
/// statistics pass. Task names are `"<dist>_t<threshold>_r<run>"`.
///
/// With a [`cache_dir`](SweepConfig::cache_dir), already-completed tasks
/// are loaded from the content-addressed cache ([`crate::cache`]) and
/// every freshly evolved task is persisted the moment it finishes — an
/// interrupted sweep restarted later recomputes only the missing tail,
/// and the loaded entries are bit-identical to what the evolution would
/// have produced. With a [`shard`](SweepConfig::shard), only that shard's
/// slice of the grid is computed (and returned).
///
/// With a [`library`](SweepConfig::library), candidates harvested from
/// previous explorations are consulted before any CGP time is spent: a
/// task whose content-addressed key matches a harvested entry replays it
/// bit for bit; otherwise the candidates are re-scored under the task's
/// distribution and the cheapest one meeting the threshold — if strictly
/// cheaper than the exact seed, which trivially meets everything — is
/// taken directly (`library_hits`); otherwise the best candidates seed the
/// evolution's initial parent (`seeded_evolutions` counts the tasks where
/// a seed won). Library-derived results are **not** written back to the
/// exact-task cache: the cache's contract is "what this task's evolution
/// computes", and a hit or seeded run computes something else.
///
/// # Errors
///
/// Returns [`CoreError::BadConfig`] for an empty distribution list, a
/// PMF/width mismatch, empty thresholds, zero iterations or an invalid
/// shard, and [`CoreError::WorkerPanic`] if a task panicked.
pub fn run_sweep(cfg: &SweepConfig) -> Result<SweepResult, CoreError> {
    if cfg.distributions.is_empty() {
        return Err(CoreError::BadConfig("no distributions given".into()));
    }
    for d in &cfg.distributions {
        validate_config(&d.pmf, &cfg.flow)?;
    }
    if let Some(s) = cfg.shard {
        if s.count == 0 || s.index >= s.count {
            return Err(CoreError::BadConfig(format!(
                "shard index {} of {} is not a valid `index < count` split",
                s.index, s.count
            )));
        }
    }
    let flow = &cfg.flow;
    let tech = TechLibrary::nangate45();
    let (seed_netlist, seed_chrom) = seed_circuit(flow)?;
    let evaluators: Vec<Arc<CircuitEvaluator>> = cfg
        .distributions
        .iter()
        .map(|d| {
            CircuitEvaluator::for_operator(flow.operator, flow.width, flow.signed, &d.pmf)
                .map(Arc::new)
        })
        .collect::<Result<_, _>>()?;

    let grid = flat_grid(cfg);
    let n_tasks = grid.len();
    let tasks: Vec<(usize, usize, usize)> = match cfg.shard {
        Some(s) => grid.iter().copied().skip(s.index).step_by(s.count).collect(),
        None => grid,
    };
    let shard_skipped = n_tasks - tasks.len();
    let threads = flow.threads.max(1);
    let name_of = |(di, ti, run): (usize, usize, usize)| {
        format!("{}_t{ti}_r{run}", cfg.distributions[di].name)
    };

    let started = Instant::now();
    let cache = cfg.cache_dir.as_ref().map(SweepCache::new);

    // Build the component library once, then re-price its candidates under
    // every distribution of this sweep (one batched statistics pass per
    // distribution on the same worker width the grid will use).
    let library: Option<ComponentLibrary> = cfg.library.as_ref().map(|lc| {
        let mut lib = ComponentLibrary::new();
        if let Some(dir) = &lc.dir {
            lib.scan_cache(dir);
        }
        if lc.conventional {
            match flow.operator {
                Operator::Mul if flow.width >= 3 => {
                    if flow.signed {
                        lib.ingest_conventional(&MultiplierLibrary::broken_family_signed(
                            flow.width,
                        ));
                        lib.ingest_conventional(&MultiplierLibrary::zero_guard_family_signed(
                            flow.width,
                        ));
                    } else {
                        lib.ingest_conventional(&MultiplierLibrary::evoapprox_like(flow.width));
                    }
                }
                Operator::Add if !flow.signed => {
                    lib.ingest_conventional_adders(flow.width);
                }
                // No conventional family exists for the remaining
                // operator/encoding combinations.
                _ => {}
            }
        }
        if lc.semantic_dedup {
            lib.dedup_semantic(&tech);
        }
        lib
    });
    let library_semantic_dups = library.as_ref().map_or(0, ComponentLibrary::semantic_dups);
    // Re-scoring is lazy per distribution: an all-replay warm run (every
    // task an exact key match) never pays the batched evaluator passes
    // for rankings nobody consults.
    //
    // The prune policy describes everything this sweep will ever ask of a
    // ranking (loosest threshold, seed cap), which is exactly what makes
    // the bound-based pre-pass result-invariant.
    let prune_policy: Option<PrunePolicy> =
        cfg.library.as_ref().filter(|l| l.prune).map(|l| PrunePolicy {
            max_threshold: flow.thresholds.iter().fold(f64::NEG_INFINITY, |m, &t| m.max(t)),
            max_seeds: l.max_seeds,
        });
    let rescored: Vec<std::cell::OnceCell<RescoredLibrary<'_>>> =
        cfg.distributions.iter().map(|_| std::cell::OnceCell::new()).collect();
    let rescored_for = |di: usize| -> Option<&RescoredLibrary<'_>> {
        match &library {
            Some(lib) if !lib.is_empty() => Some(rescored[di].get_or_init(|| {
                lib.rescore_pruned(&evaluators[di], &tech, threads, prune_policy.as_ref())
            })),
            _ => None,
        }
    };
    // The Eq. 1 cost of the trivial feasible solution (the exact seed):
    // the bar a library hit has to clear.
    let seed_area = area_of(&seed_chrom.decode_active(), &tech);

    /// How a task that was not replayed from the cache gets its result.
    enum Work {
        /// Run CGP, warm-started by the given library seeds (empty when
        /// the library has nothing to offer — bit-identical to no
        /// library at all).
        Evolve(Vec<Chromosome>),
        /// A re-scored library candidate already meets the threshold:
        /// finish it (physical estimate under this task's stimulus
        /// stream) without any evolution.
        TakeCandidate { chromosome: Chromosome, netlist: Netlist, stats: ErrorStats },
    }

    /// A task for the pool: its slot in the entry list, its grid
    /// coordinates, the key to checkpoint it under (when caching), and
    /// how to compute it.
    type Pending = (usize, (usize, usize, usize), Option<CacheKey>, Work);

    // Resolve cache hits and library replays up front (cheap
    // deserialization, no point going through the pool), leaving only the
    // tasks that truly need simulation or CGP time.
    let mut slots: Vec<Option<EvolvedCircuit>> = Vec::with_capacity(tasks.len());
    let mut to_compute: Vec<Pending> = Vec::new();
    let mut cache_hits = 0usize;
    let mut library_hits = 0usize;
    for (pos, &(di, ti, run)) in tasks.iter().enumerate() {
        let key = (cache.is_some() || library.is_some()).then(|| {
            task_key(
                flow,
                &cfg.distributions[di].pmf,
                flow.thresholds[ti],
                run,
                task_seed(flow.seed, di, ti, run),
            )
        });
        let mut hit =
            cache.as_ref().and_then(|c| key.and_then(|k| c.load(k))).inspect(|_| cache_hits += 1);
        if hit.is_none() && cfg.library.as_ref().is_some_and(|l| l.take_hits) {
            // The library may have harvested this exact task (content-
            // addressed key match) from another run's cache directory:
            // replaying it is bit-identical to a cache hit. Seed-only
            // mode skips this too — its contract is to *refine* every
            // task, and the harvested entry will come back anyway as the
            // warm-start seed to beat.
            hit = library
                .as_ref()
                .and_then(|lib| {
                    key.and_then(|k| lib.exact_match(k, flow.operator, flow.width, flow.signed))
                        .cloned()
                })
                .inspect(|m| {
                    library_hits += 1;
                    // Unlike re-scored hits, an exact replay *is* what
                    // this task's evolution computes (that is what the
                    // key addresses), so checkpointing it into our own
                    // cache is contract-safe — and keeps the result if
                    // the donor directory is later GC'd or lost.
                    if let (Some(c), Some(k)) = (&cache, key) {
                        let _ = c.store(k, m, flow.operator, flow.width, flow.signed);
                    }
                });
        }
        slots.push(hit.map(|mut m| {
            m.name = name_of((di, ti, run));
            m
        }));
        if slots[pos].is_some() {
            continue;
        }
        let lc = cfg.library.as_ref();
        let work = match rescored_for(di) {
            Some(r) if lc.is_some_and(|l| l.take_hits) => {
                // A hit must beat the trivial feasible answer: the exact
                // seed circuit meets *every* threshold, so a candidate
                // that is not strictly cheaper than the seed saves
                // nothing and would only suppress a potentially better
                // evolution.
                match r.best_meeting(flow.thresholds[ti]) {
                    Some(c) if c.area < seed_area => {
                        library_hits += 1;
                        Work::TakeCandidate {
                            chromosome: c.entry.chromosome.clone(),
                            netlist: c.entry.netlist.clone(),
                            stats: c.stats,
                        }
                    }
                    _ => Work::Evolve(task_seeds(r, flow, ti, lc)),
                }
            }
            Some(r) => Work::Evolve(task_seeds(r, flow, ti, lc)),
            None => Work::Evolve(Vec::new()),
        };
        to_compute.push((pos, (di, ti, run), key, work));
    }
    let cache_misses =
        to_compute.iter().filter(|(_, _, _, w)| matches!(w, Work::Evolve(_))).count();

    // Each evolved task is persisted by its worker the moment it
    // completes, so an interrupted run checkpoints everything already
    // finished. Library-derived results are never stored under the exact
    // task key (they are not what the task's evolution would compute).
    let computed = run_tasks(
        threads,
        to_compute,
        |(_, t, _, _)| name_of(*t),
        |_, (pos, (di, ti, run), key, work)| {
            let seed = task_seed(flow.seed, di, ti, run);
            match work {
                Work::Evolve(seeds) => {
                    let (m, initial_seed) = evolve_one(
                        flow,
                        &cfg.distributions[di].pmf,
                        &tech,
                        &seed_chrom,
                        &evaluators[di],
                        ti,
                        run,
                        seed,
                        name_of((di, ti, run)),
                        &seeds,
                    );
                    if initial_seed.is_none() {
                        if let (Some(c), Some(k)) = (&cache, key) {
                            // When every seed lost, the search trajectory
                            // is exactly the unseeded one and only the
                            // warm-start fitness calls inflate the
                            // counter — checkpoint the entry as a plain
                            // evolution would have computed it, keeping
                            // the cache key → content contract intact.
                            // (A failed store — read-only dir, full disk
                            // — only costs a future recompute; the
                            // in-memory result stands.)
                            let mut plain = m.clone();
                            plain.evaluations -= seeds.len() as u64;
                            let _ = c.store(k, &plain, flow.operator, flow.width, flow.signed);
                        }
                    }
                    (pos, m, initial_seed.is_some())
                }
                Work::TakeCandidate { chromosome, netlist, stats } => {
                    // Same estimate stream as an evolution of this task
                    // (`seed ^ 0xE57`), so taking a candidate is exactly
                    // as deterministic as evolving one.
                    let mut est_rng = Xoshiro256::from_seed(seed ^ 0xE57);
                    let estimate = estimate_under_pmf(
                        &netlist,
                        &tech,
                        &cfg.distributions[di].pmf,
                        DEFAULT_CLOCK_MHZ,
                        flow.activity_blocks,
                        &mut est_rng,
                    );
                    let m = EvolvedCircuit {
                        name: name_of((di, ti, run)),
                        chromosome,
                        netlist,
                        threshold: flow.thresholds[ti],
                        run,
                        stats,
                        estimate,
                        evaluations: 0,
                    };
                    (pos, m, false)
                }
            }
        },
    )?;
    let wall_seconds = started.elapsed().as_secs_f64();
    let library_pruned: usize =
        rescored.iter().filter_map(|c| c.get()).map(super::library::RescoredLibrary::pruned).sum();

    let mut computed_evaluations = 0u64;
    let mut seeded_evolutions = 0usize;
    for (pos, m, seeded) in computed {
        computed_evaluations += m.evaluations;
        seeded_evolutions += usize::from(seeded);
        slots[pos] = Some(m);
    }
    let entries: Vec<SweepEntry> = slots
        .into_iter()
        .zip(&tasks)
        .map(|(m, &(di, _, _))| SweepEntry {
            dist: cfg.distributions[di].name.clone(),
            dist_index: di,
            circuit: m.expect("every task is either cached or computed"),
        })
        .collect();
    let total_evaluations: u64 = entries.iter().map(|e| e.circuit.evaluations).sum();

    let compact_seed = seed_netlist.compact();
    let seed_estimates: Vec<CircuitEstimate> = cfg
        .distributions
        .iter()
        .enumerate()
        .map(|(di, d)| {
            // Distribution 0 uses exactly the flow's seed-estimate stream
            // (`seed ^ 0x5EED`), so the same config reports the same
            // reference estimate whichever driver ran it.
            let mut est_rng =
                Xoshiro256::from_seed((flow.seed ^ 0x5EED).wrapping_add((di as u64) << 48));
            estimate_under_pmf(
                &compact_seed,
                &tech,
                &d.pmf,
                DEFAULT_CLOCK_MHZ,
                flow.activity_blocks,
                &mut est_rng,
            )
        })
        .collect();

    Ok(SweepResult {
        entries,
        evaluators,
        seed_estimates,
        seed_netlist,
        stats: SweepStats {
            wall_seconds,
            total_evaluations,
            computed_evaluations,
            evaluations_per_second: SweepStats::rate(computed_evaluations, wall_seconds),
            threads,
            tasks: n_tasks,
            cache_hits,
            cache_misses,
            shard_skipped,
            library_hits,
            seeded_evolutions,
            library_pruned,
            library_semantic_dups,
        },
    })
}

/// Flattens `cfg`'s full `(distribution, threshold, run)` grid in the
/// deterministic order every sweep participant shares — the order task
/// indices (and therefore [`Shard`] strides) are defined over.
fn flat_grid(cfg: &SweepConfig) -> Vec<(usize, usize, usize)> {
    (0..cfg.distributions.len())
        .flat_map(|di| {
            cfg.flow
                .thresholds
                .iter()
                .enumerate()
                .flat_map(move |(ti, _)| (0..cfg.flow.runs_per_threshold).map(move |r| (di, ti, r)))
        })
        .collect()
}

/// The content-addressed cache keys of every task of `cfg`'s **full**
/// grid (any [`Shard`] restriction is ignored — the keys describe what
/// the whole exploration serves), in flat grid order.
///
/// This is the "live set" a garbage collection pass
/// ([`crate::cache::gc_cache_dir`]) must never evict: exactly the keys a
/// warm or resumed run of `cfg` will ask the cache for.
#[must_use]
pub fn grid_keys(cfg: &SweepConfig) -> Vec<CacheKey> {
    flat_grid(cfg)
        .into_iter()
        .map(|(di, ti, run)| {
            task_key(
                &cfg.flow,
                &cfg.distributions[di].pmf,
                cfg.flow.thresholds[ti],
                run,
                task_seed(cfg.flow.seed, di, ti, run),
            )
        })
        .collect()
}

/// The chromosomes a task's evolution is warm-started with: the library's
/// deterministic seed ranking for this threshold, capped by the
/// configured [`LibraryConfig::max_seeds`]. Threshold-0 tasks get none —
/// they keep the exact seed without running CGP, so offered seeds would
/// never even be evaluated.
fn task_seeds(
    rescored: &RescoredLibrary<'_>,
    flow: &FlowConfig,
    ti: usize,
    lc: Option<&LibraryConfig>,
) -> Vec<Chromosome> {
    let threshold = flow.thresholds[ti];
    if threshold == 0.0 {
        return Vec::new();
    }
    let max = lc.map_or(0, |l| l.max_seeds);
    rescored.seeds(threshold, max).into_iter().map(|c| c.entry.chromosome.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> SweepConfig {
        SweepConfig {
            distributions: vec![
                SweepDist::new("Dh", Pmf::half_normal(4, 3.0)),
                SweepDist::new("Du", Pmf::uniform(4)),
            ],
            flow: FlowConfig {
                width: 4,
                thresholds: vec![0.0, 0.02],
                iterations: 200,
                runs_per_threshold: 2,
                cols_slack: 20,
                threads: 2,
                activity_blocks: 8,
                ..FlowConfig::default()
            },
            ..SweepConfig::default()
        }
    }

    /// Per-test unique cache directory, cleaned before use.
    fn fresh_cache_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("apx_sweep_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_entries_bit_identical(a: &SweepResult, b: &SweepResult) {
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.dist, y.dist);
            assert_eq!(x.dist_index, y.dist_index);
            let (mx, my) = (&x.circuit, &y.circuit);
            assert_eq!(mx.name, my.name);
            assert_eq!(mx.chromosome, my.chromosome, "{} differs", mx.name);
            assert_eq!(mx.threshold.to_bits(), my.threshold.to_bits());
            assert_eq!(mx.run, my.run);
            assert_eq!(mx.stats, my.stats, "{} stats differ", mx.name);
            assert_eq!(mx.estimate, my.estimate, "{} estimate differs", mx.name);
            assert_eq!(mx.evaluations, my.evaluations);
        }
    }

    #[test]
    fn sweep_covers_the_full_grid_in_order() {
        let result = run_sweep(&tiny_sweep()).unwrap();
        assert_eq!(result.entries.len(), 2 * 2 * 2);
        assert_eq!(result.stats.tasks, 8);
        assert_eq!(result.evaluators.len(), 2);
        assert_eq!(result.seed_estimates.len(), 2);
        let names: Vec<&str> = result.entries.iter().map(|e| e.circuit.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "Dh_t0_r0", "Dh_t0_r1", "Dh_t1_r0", "Dh_t1_r1", "Du_t0_r0", "Du_t0_r1", "Du_t1_r0",
                "Du_t1_r1"
            ]
        );
        for e in &result.entries {
            assert!(e.circuit.stats.wmed <= e.circuit.threshold + 1e-12);
        }
        // Threshold-0 tasks keep the exact seed.
        assert_eq!(result.entries[0].circuit.stats.max_abs_error, 0);
        assert!(result.stats.total_evaluations > 0);
        assert!(result.stats.wall_seconds > 0.0);
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120;
        cfg.flow.threads = 4;
        let a = run_sweep(&cfg).unwrap();
        cfg.flow.threads = 1;
        let b = run_sweep(&cfg).unwrap();
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.dist, y.dist);
            let (mx, my) = (&x.circuit, &y.circuit);
            assert_eq!(mx.name, my.name);
            assert_eq!(mx.chromosome, my.chromosome, "{} differs", mx.name);
            assert_eq!(mx.stats, my.stats, "{} stats differ", mx.name);
            assert_eq!(mx.estimate, my.estimate, "{} estimate differs", mx.name);
        }
        assert_eq!(a.seed_estimates, b.seed_estimates);
    }

    #[test]
    fn best_per_threshold_minimizes_area_within_each_distribution() {
        let result = run_sweep(&tiny_sweep()).unwrap();
        for di in 0..2 {
            let best = result.best_per_threshold(di);
            assert_eq!(best.len(), 2);
            for b in best {
                for e in result.entries_for(di) {
                    if e.circuit.threshold == b.threshold {
                        assert!(b.estimate.area_um2 <= e.circuit.estimate.area_um2);
                    }
                }
            }
        }
    }

    #[test]
    fn sweep_rejects_bad_configurations() {
        let empty = SweepConfig::default();
        assert!(matches!(run_sweep(&empty), Err(CoreError::BadConfig(_))));
        let mut mismatch = tiny_sweep();
        mismatch.distributions.push(SweepDist::new("bad", Pmf::uniform(8)));
        assert!(matches!(run_sweep(&mismatch), Err(CoreError::BadConfig(_))));
        let mut no_thresholds = tiny_sweep();
        no_thresholds.flow.thresholds.clear();
        assert!(matches!(run_sweep(&no_thresholds), Err(CoreError::BadConfig(_))));
        for shard in [Shard { index: 0, count: 0 }, Shard { index: 3, count: 3 }] {
            let mut bad_shard = tiny_sweep();
            bad_shard.shard = Some(shard);
            assert!(matches!(run_sweep(&bad_shard), Err(CoreError::BadConfig(_))));
        }
    }

    #[test]
    fn warm_cache_run_is_bit_identical_and_all_hits() {
        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120;
        let cold_no_cache = run_sweep(&cfg).unwrap();
        assert_eq!(cold_no_cache.stats.cache_hits, 0);
        assert_eq!(cold_no_cache.stats.cache_misses, 8, "no cache dir: every task computed");

        cfg.cache_dir = Some(fresh_cache_dir("warm"));
        let cold = run_sweep(&cfg).unwrap();
        assert_eq!(cold.stats.cache_misses, 8);
        let warm = run_sweep(&cfg).unwrap();
        assert_eq!(warm.stats.cache_hits, 8, "second run must load every task");
        assert_eq!(warm.stats.cache_misses, 0);
        // Cached entries are bit-identical to freshly computed ones, and
        // the cache itself never changes results vs. an uncached run.
        assert_entries_bit_identical(&cold, &warm);
        assert_entries_bit_identical(&cold_no_cache, &warm);
        assert_eq!(cold.seed_estimates, warm.seed_estimates);
        assert_eq!(
            cold.stats.total_evaluations, warm.stats.total_evaluations,
            "hits carry the evaluations their original computation spent"
        );
        assert_eq!(cold.stats.computed_evaluations, cold.stats.total_evaluations);
        assert_eq!(
            warm.stats.computed_evaluations, 0,
            "a fully warm run performs zero CGP evolutions"
        );
        assert_eq!(warm.stats.evaluations_per_second, 0.0, "no work, no claimed throughput");
    }

    #[test]
    fn cache_hits_do_not_depend_on_thread_count() {
        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120;
        cfg.cache_dir = Some(fresh_cache_dir("threads"));
        cfg.flow.threads = 4;
        let cold = run_sweep(&cfg).unwrap();
        cfg.flow.threads = 1;
        let warm = run_sweep(&cfg).unwrap();
        assert_eq!(warm.stats.cache_hits, 8);
        assert_entries_bit_identical(&cold, &warm);
    }

    #[test]
    fn interrupted_sweep_resumes_only_the_missing_tail() {
        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120;
        let dir = fresh_cache_dir("resume");
        cfg.cache_dir = Some(dir.clone());
        let full = run_sweep(&cfg).unwrap();

        // Simulate a sweep killed partway: drop 3 of the 8 checkpointed
        // entries (a torn write is impossible by construction — files are
        // renamed into place whole — so deletion is the honest model).
        let mut files: Vec<_> =
            std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
        assert_eq!(files.len(), 8);
        files.sort();
        for f in &files[..3] {
            std::fs::remove_file(f).unwrap();
        }

        let resumed = run_sweep(&cfg).unwrap();
        assert_eq!(resumed.stats.cache_hits, 5);
        assert_eq!(resumed.stats.cache_misses, 3, "only the missing tail is recomputed");
        assert_entries_bit_identical(&full, &resumed);
    }

    #[test]
    fn corrupt_cache_entry_falls_back_to_recompute() {
        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120;
        let dir = fresh_cache_dir("corrupt");
        cfg.cache_dir = Some(dir.clone());
        let cold = run_sweep(&cfg).unwrap();

        let mut files: Vec<_> =
            std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
        files.sort();
        // One truncated, one outright garbage.
        let bytes = std::fs::read(&files[0]).unwrap();
        std::fs::write(&files[0], &bytes[..bytes.len() / 2]).unwrap();
        std::fs::write(&files[1], b"not a sweep entry at all\n").unwrap();

        let rerun = run_sweep(&cfg).unwrap();
        assert_eq!(rerun.stats.cache_hits, 6);
        assert_eq!(rerun.stats.cache_misses, 2, "corrupt entries recompute, never panic");
        assert_entries_bit_identical(&cold, &rerun);
        // The recompute overwrote the damage: next run is all hits again.
        assert_eq!(run_sweep(&cfg).unwrap().stats.cache_hits, 8);
    }

    /// Format-bump regression: pre-operator (`apxsweep v2`) entries must
    /// be clean misses, never misread. Real v2 files additionally sit at
    /// different filenames (the key preimage gained an operator line), so
    /// this plants worst-case impostors — v2-shaped content at *live* v3
    /// key paths — and the header guard alone must reject them.
    #[test]
    fn v2_format_entries_are_clean_misses_and_get_rewritten_as_v3() {
        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120;
        let dir = fresh_cache_dir("v2_format");
        cfg.cache_dir = Some(dir.clone());
        let cold = run_sweep(&cfg).unwrap();
        assert_eq!(cold.stats.cache_misses, 8);

        let mut files: Vec<_> =
            std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
        assert_eq!(files.len(), 8);
        files.sort();
        for f in &files {
            let text = std::fs::read_to_string(f).unwrap();
            assert!(text.starts_with("apxsweep v3\n"), "entries are written as v3");
            assert!(text.contains("\nop mul 4 unsigned\n"), "v3 headers carry the operator");
            let downgraded =
                text.replace("apxsweep v3", "apxsweep v2").replace("op mul 4 ", "op 4 ");
            std::fs::write(f, downgraded).unwrap();
        }

        let rerun = run_sweep(&cfg).unwrap();
        assert_eq!(rerun.stats.cache_hits, 0, "v2 entries must never be served");
        assert_eq!(rerun.stats.cache_misses, 8, "every stale entry recomputes");
        assert_entries_bit_identical(&cold, &rerun);
        // The recompute rewrote every entry in v3 form: fully warm again.
        let warm = run_sweep(&cfg).unwrap();
        assert_eq!(warm.stats.cache_hits, 8);
        assert_entries_bit_identical(&cold, &warm);
    }

    #[test]
    fn sharded_runs_cover_the_grid_and_reassemble_to_the_unsharded_result() {
        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120;
        let unsharded = run_sweep(&cfg).unwrap();

        let dir = fresh_cache_dir("shards");
        cfg.cache_dir = Some(dir.clone());
        let n = 3;
        let mut covered = 0;
        for index in 0..n {
            cfg.shard = Some(Shard { index, count: n });
            let part = run_sweep(&cfg).unwrap();
            assert_eq!(part.stats.tasks, 8, "`tasks` reports the full grid");
            assert_eq!(part.stats.shard_skipped, 8 - part.entries.len());
            assert_eq!(part.stats.cache_misses, part.entries.len(), "shards are disjoint");
            // Each shard's entries are the matching slice of the unsharded
            // run, bit for bit.
            for (e, full) in
                part.entries.iter().zip(unsharded.entries.iter().skip(index).step_by(n))
            {
                assert_eq!(e.circuit.name, full.circuit.name);
                assert_eq!(e.circuit.chromosome, full.circuit.chromosome);
                assert_eq!(e.circuit.stats, full.circuit.stats);
                assert_eq!(e.circuit.estimate, full.circuit.estimate);
            }
            covered += part.entries.len();
        }
        assert_eq!(covered, 8, "the shards partition the grid exactly");

        // The final unsharded resume assembles the whole grid from cache.
        cfg.shard = None;
        let assembled = run_sweep(&cfg).unwrap();
        assert_eq!(assembled.stats.cache_hits, 8);
        assert_eq!(assembled.stats.cache_misses, 0);
        assert_entries_bit_identical(&unsharded, &assembled);
    }

    #[test]
    fn empty_library_is_bit_identical_to_no_library() {
        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120;
        let off = run_sweep(&cfg).unwrap();
        // Empty/missing directory, no conventional entries: library mode
        // must be a provable no-op (the acceptance contract for turning
        // `APX_LIBRARY=on` into the default some day).
        cfg.library = Some(LibraryConfig {
            dir: Some(fresh_cache_dir("libempty")),
            ..LibraryConfig::default()
        });
        let on = run_sweep(&cfg).unwrap();
        assert_eq!(on.stats.library_hits, 0);
        assert_eq!(on.stats.seeded_evolutions, 0);
        assert_entries_bit_identical(&off, &on);
        assert_eq!(off.stats.total_evaluations, on.stats.total_evaluations);
    }

    #[test]
    fn library_replays_its_own_tasks_bit_for_bit_via_key_match() {
        // Populate a cache, then run the *same* grid with caching off but
        // the library pointed at that directory: every task's content-
        // addressed key matches a harvested entry, so the whole sweep is
        // library hits and bit-identical to the original.
        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120;
        let dir = fresh_cache_dir("libreplay");
        cfg.cache_dir = Some(dir.clone());
        let cold = run_sweep(&cfg).unwrap();

        // A fresh cache of our own: replays must be adopted into it (an
        // exact key match is bit-identical to what the task computes, so
        // checkpointing it is contract-safe), insuring this run against
        // the donor directory being GC'd later.
        let own_dir = fresh_cache_dir("libreplay_own");
        cfg.cache_dir = Some(own_dir);
        cfg.library = Some(LibraryConfig { dir: Some(dir), ..LibraryConfig::default() });
        let replayed = run_sweep(&cfg).unwrap();
        assert_eq!(replayed.stats.cache_hits, 0);
        assert_eq!(replayed.stats.library_hits, 8, "every task is an exact key match");
        assert_eq!(replayed.stats.cache_misses, 0);
        assert_eq!(replayed.stats.computed_evaluations, 0, "no CGP at all");
        assert_entries_bit_identical(&cold, &replayed);

        // Donor gone, library off: the adopted checkpoints carry the run.
        cfg.library = None;
        let warm = run_sweep(&cfg).unwrap();
        assert_eq!(warm.stats.cache_hits, 8, "adopted entries replay without the donor");
        assert_entries_bit_identical(&cold, &warm);
    }

    #[test]
    fn library_reuses_a_foreign_distribution_cache() {
        // The acceptance scenario: an overnight cache populated under one
        // distribution serves a sweep under *different* distributions.
        let donor = SweepConfig {
            distributions: vec![SweepDist::new("Dh", Pmf::half_normal(4, 3.0))],
            flow: FlowConfig {
                width: 4,
                thresholds: vec![0.0, 0.02, 0.1],
                iterations: 300,
                runs_per_threshold: 2,
                cols_slack: 20,
                threads: 2,
                activity_blocks: 8,
                ..FlowConfig::default()
            },
            cache_dir: Some(fresh_cache_dir("libforeign")),
            ..SweepConfig::default()
        };
        run_sweep(&donor).unwrap();

        // Different distribution, different seed → different task keys:
        // nothing can exact-replay, only re-scoring can help.
        let mut cfg = SweepConfig {
            distributions: vec![SweepDist::new("Du", Pmf::uniform(4))],
            flow: FlowConfig { seed: 99, thresholds: vec![0.05, 0.2], ..donor.flow.clone() },
            library: Some(LibraryConfig {
                dir: donor.cache_dir.clone(),
                ..LibraryConfig::default()
            }),
            ..SweepConfig::default()
        };
        let reused = run_sweep(&cfg).unwrap();
        assert!(
            reused.stats.library_hits > 0,
            "a loose budget must admit some donor candidate: {:?}",
            reused.stats
        );
        // Library or not, every result obeys its threshold.
        for e in &reused.entries {
            assert!(
                e.circuit.stats.wmed <= e.circuit.threshold + 1e-12,
                "{}: wmed {} over budget {}",
                e.circuit.name,
                e.circuit.stats.wmed,
                e.circuit.threshold
            );
        }
        // Hits carry zero evaluations (no evolution happened for them).
        assert!(reused.entries.iter().any(|e| e.circuit.evaluations == 0));
        // Determinism: thread count does not change library-mode results.
        cfg.flow.threads = 1;
        let single = run_sweep(&cfg).unwrap();
        assert_eq!(single.stats.library_hits, reused.stats.library_hits);
        assert_eq!(single.stats.seeded_evolutions, reused.stats.seeded_evolutions);
        assert_entries_bit_identical(&reused, &single);
    }

    #[test]
    fn seed_only_mode_warm_starts_evolutions_from_the_library() {
        // take_hits = false: the library never short-circuits a task; it
        // hands feasible candidates to CGP as initial parents instead
        // (the refinement mode).
        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120;
        let dir = fresh_cache_dir("libseed");
        cfg.cache_dir = Some(dir.clone());
        let cold = run_sweep(&cfg).unwrap();

        cfg.cache_dir = None;
        // Deliberately the *same* configuration: every task's key matches
        // a harvested entry, and seed-only mode must still refuse to
        // short-circuit (an exact replay would skip the refinement that
        // is this mode's whole point — the harvested entry comes back as
        // the warm-start seed to beat instead).
        cfg.library =
            Some(LibraryConfig { dir: Some(dir), take_hits: false, ..LibraryConfig::default() });
        let seeded = run_sweep(&cfg).unwrap();
        assert_eq!(
            seeded.stats.library_hits, 0,
            "seed-only mode never takes hits, not even exact key matches"
        );
        assert!(
            seeded.stats.seeded_evolutions > 0,
            "an already-shrunk feasible candidate must beat the exact seed: {:?}",
            seeded.stats
        );
        for (s, c) in seeded.entries.iter().zip(&cold.entries) {
            let (sm, cm) = (&s.circuit, &c.circuit);
            assert!(sm.stats.wmed <= sm.threshold + 1e-12, "{} over budget", sm.name);
            // Warm-started evolution can only match or improve the donor
            // candidate pool it started from (area is the Eq. 1 cost).
            if sm.threshold > 0.0 {
                assert!(
                    sm.estimate.area_um2 <= cm.estimate.area_um2 + 1e-9,
                    "{}: seeded {} vs cold {}",
                    sm.name,
                    sm.estimate.area_um2,
                    cm.estimate.area_um2
                );
            }
        }
    }

    #[test]
    fn seeded_but_lost_evolutions_checkpoint_the_plain_result() {
        // Regression: a library-mode evolution whose seeds all lose runs
        // the exact unseeded trajectory, but its in-memory `evaluations`
        // includes the warm-start fitness calls. The checkpoint written
        // under the exact task key must be what a *plain* evolution
        // computes — a later no-library warm run replays it and must be
        // bit-identical (evaluations included) to a plain cold run.
        let mut donor_cfg = tiny_sweep();
        donor_cfg.flow.iterations = 120;
        let donor_dir = fresh_cache_dir("libplain_donor");
        donor_cfg.cache_dir = Some(donor_dir.clone());
        run_sweep(&donor_cfg).unwrap();

        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120;
        cfg.flow.seed = 0x5EED_FACE; // fresh keys: no exact replays
        cfg.flow.thresholds = vec![0.0, 1e-9]; // nothing can hit or win
        let plain = run_sweep(&cfg).unwrap();

        let dir = fresh_cache_dir("libplain_cache");
        cfg.cache_dir = Some(dir);
        cfg.library = Some(LibraryConfig {
            dir: Some(donor_dir),
            // Seed-only mode: candidates are offered to every evolution
            // (and at threshold 1e-9 can only tie or violate, so they
            // all lose) — the checkpoint path under test.
            take_hits: false,
            ..LibraryConfig::default()
        });
        let libbed = run_sweep(&cfg).unwrap();
        assert_eq!(libbed.stats.library_hits, 0);
        assert_eq!(libbed.stats.seeded_evolutions, 0, "ties must keep the exact parent");
        // The library run itself matches the plain run except for the
        // honestly-reported warm-start evaluations.
        for (p, l) in plain.entries.iter().zip(&libbed.entries) {
            assert_eq!(p.circuit.chromosome, l.circuit.chromosome);
            assert_eq!(p.circuit.stats, l.circuit.stats);
            assert!(l.circuit.evaluations >= p.circuit.evaluations);
        }
        // The replayed checkpoints are indistinguishable from plain work.
        cfg.library = None;
        let warm = run_sweep(&cfg).unwrap();
        assert_eq!(warm.stats.cache_hits, 8, "every checkpoint replays");
        assert_entries_bit_identical(&plain, &warm);
    }

    #[test]
    fn library_rescore_is_bit_identical_to_sweep_reported_wmed() {
        use crate::library::{netlist_digest, ComponentLibrary};
        // Satellite contract: re-scoring a harvested chromosome under a
        // Pmf must reproduce the WMED the sweep itself reports for that
        // chromosome — threads 1 vs 4, cold run vs warm replay.
        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120;
        let dir = fresh_cache_dir("librescore");
        cfg.cache_dir = Some(dir.clone());
        let cold = run_sweep(&cfg).unwrap();
        let warm = run_sweep(&cfg).unwrap();
        assert_eq!(warm.stats.cache_hits, 8);

        let mut lib = ComponentLibrary::new();
        assert!(lib.scan_cache(&dir) > 0);
        let tech = TechLibrary::nangate45();
        for (di, evaluator) in cold.evaluators.iter().enumerate() {
            for threads in [1, 4] {
                let rescored = lib.rescore(evaluator, &tech, threads);
                for source in cold.entries_for(di).chain(warm.entries_for(di)) {
                    let digest = netlist_digest(&source.circuit.netlist);
                    let candidate = rescored
                        .candidates()
                        .iter()
                        .find(|c| c.entry.digest == digest)
                        .expect("every swept chromosome was harvested");
                    assert_eq!(
                        candidate.stats.wmed.to_bits(),
                        source.circuit.stats.wmed.to_bits(),
                        "{} rescored wmed differs ({} threads)",
                        source.circuit.name,
                        threads
                    );
                    assert_eq!(candidate.stats, source.circuit.stats);
                }
            }
        }
    }

    #[test]
    fn grid_keys_cover_the_full_grid_and_ignore_sharding() {
        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120; // iterations are part of every key
        let keys = grid_keys(&cfg);
        assert_eq!(keys.len(), 8);
        let unique: std::collections::HashSet<_> = keys.iter().copied().collect();
        assert_eq!(unique.len(), 8, "every task has a distinct key");
        cfg.shard = Some(Shard { index: 1, count: 3 });
        assert_eq!(grid_keys(&cfg), keys, "the live set is the whole grid, shard or not");
        // The keys are exactly the files a cold cached run leaves behind.
        cfg.shard = None;
        cfg.cache_dir = Some(fresh_cache_dir("gridkeys"));
        run_sweep(&cfg).unwrap();
        let cache = SweepCache::new(cfg.cache_dir.as_ref().unwrap());
        for key in keys {
            assert!(cache.load(key).is_some(), "{key} not checkpointed");
        }
    }

    #[test]
    fn gc_preserves_live_grid_and_library_hits() {
        use crate::cache::{cache_dir_stats, gc_cache_dir, GcConfig};

        // Two generations of the same grid share one cache directory; GC
        // driven by the *current* generation's live keys evicts the
        // dominated remains of the old one, while a library-mode consumer
        // reports the same hits before and after (the autoAx contract:
        // only dominated — never takeable — candidates were dropped).
        let dir = fresh_cache_dir("gc_live");
        let mut old_gen = tiny_sweep();
        old_gen.flow.iterations = 120;
        old_gen.cache_dir = Some(dir.clone());
        run_sweep(&old_gen).unwrap();

        let mut live = old_gen.clone();
        live.flow.seed = 0xA11CE; // same grid shape, disjoint keys
        let live_cold = run_sweep(&live).unwrap();
        assert_eq!(live_cold.stats.cache_misses, 8);
        assert_eq!(cache_dir_stats(&dir).entries, 16);

        // A library consumer with fresh keys (nothing exact-replays):
        // every hit is a re-scored Pareto-front candidate.
        let consumer = SweepConfig {
            distributions: vec![SweepDist::new("Dc", Pmf::uniform(4))],
            flow: FlowConfig { seed: 31337, thresholds: vec![0.05, 0.2], ..live.flow.clone() },
            library: Some(LibraryConfig { dir: Some(dir.clone()), ..LibraryConfig::default() }),
            ..SweepConfig::default()
        };
        let before = run_sweep(&consumer).unwrap();
        assert!(before.stats.library_hits > 0, "loose budgets must hit: {:?}", before.stats);

        let gc = GcConfig {
            keep: grid_keys(&live).into_iter().collect(),
            distributions: live
                .distributions
                .iter()
                .chain(&consumer.distributions)
                .map(|d| d.pmf.clone())
                .collect(),
            threads: 2,
            tmp_ttl: std::time::Duration::ZERO,
            ..GcConfig::default()
        };
        let report = gc_cache_dir(&dir, &gc).unwrap();
        assert_eq!(report.entries_before, 16);
        assert_eq!(report.kept_live, 8, "the live grid is untouchable");
        assert!(report.evicted > 0, "dominated historical entries must go");
        assert_eq!(report.kept(), cache_dir_stats(&dir).entries);

        // The live grid still warm-replays bit-identically...
        let warm = run_sweep(&live).unwrap();
        assert_eq!(warm.stats.cache_hits, 8);
        assert_entries_bit_identical(&live_cold, &warm);

        // ...and the consumer takes the same hits from the survivors.
        let after = run_sweep(&consumer).unwrap();
        assert_eq!(after.stats.library_hits, before.stats.library_hits);
        for (b, a) in before.entries.iter().zip(&after.entries) {
            assert!(a.circuit.stats.wmed <= a.circuit.threshold + 1e-12);
            if b.circuit.evaluations == 0 {
                // A pre-GC hit is on the surviving front: same candidate,
                // same estimate, bit for bit.
                assert_eq!(b.circuit.chromosome, a.circuit.chromosome);
                assert_eq!(b.circuit.stats, a.circuit.stats);
                assert_eq!(b.circuit.estimate, a.circuit.estimate);
            }
        }
    }

    #[test]
    fn single_distribution_sweep_matches_the_flow() {
        // The sweep generalizes `evolve_circuits`: with one distribution
        // the task seeds and estimate streams coincide, so results must be
        // bit-for-bit identical (only the task names differ).
        let pmf = Pmf::uniform(4);
        let cfg = SweepConfig {
            distributions: vec![SweepDist::new("Du", pmf.clone())],
            flow: FlowConfig {
                width: 4,
                thresholds: vec![0.0, 0.02],
                iterations: 150,
                threads: 1,
                activity_blocks: 8,
                cols_slack: 20,
                ..FlowConfig::default()
            },
            ..SweepConfig::default()
        };
        let sweep = run_sweep(&cfg).unwrap();
        let flow = crate::evolve_circuits(&pmf, &cfg.flow).unwrap();
        assert_eq!(sweep.entries.len(), flow.circuits.len());
        for (e, m) in sweep.entries.iter().zip(&flow.circuits) {
            assert_eq!(e.circuit.chromosome, m.chromosome);
            assert_eq!(e.circuit.stats, m.stats);
            assert_eq!(e.circuit.estimate, m.estimate);
        }
        assert_eq!(sweep.seed_estimates[0], flow.seed_estimate);
    }

    /// Stores a donor entry whose netlist pins every output to a bit of
    /// `pattern` — the verify bounds on such circuits are tight, so a
    /// hopeless pattern is provably prunable.
    fn store_constant_donor(cache: &SweepCache, flow: &FlowConfig, pattern: u64, run: usize) {
        let op = flow.operator;
        let mut b = apx_gates::NetlistBuilder::new(op.num_inputs(flow.width));
        let zero = b.const0();
        let one = b.const1();
        let outs: Vec<_> = (0..op.num_outputs(flow.width))
            .map(|k| if (pattern >> k) & 1 == 1 { one } else { zero })
            .collect();
        b.outputs(&outs);
        let netlist = b.finish().unwrap();
        let chromosome = Chromosome::from_netlist(
            &netlist,
            &apx_cgp::FunctionSet::extended(),
            netlist.gate_count(),
        )
        .unwrap();
        let circuit = EvolvedCircuit {
            name: format!("const_{pattern}"),
            netlist: chromosome.decode_active(),
            chromosome,
            threshold: 0.9,
            run,
            stats: ErrorStats {
                med: 0.0,
                wmed: 0.0,
                wce: 0.0,
                error_rate: 0.0,
                mred: 0.0,
                max_abs_error: 0,
            },
            estimate: CircuitEstimate {
                area_um2: 0.0,
                delay_ns: 0.0,
                leakage_uw: 0.0,
                dynamic_uw: 0.0,
                clock_mhz: DEFAULT_CLOCK_MHZ,
            },
            evaluations: 1,
        };
        let key = task_key(flow, &Pmf::uniform(flow.width), 0.9, run, 0xD0_0D + run as u64);
        cache.store(key, &circuit, op, flow.width, false).unwrap();
    }

    #[test]
    fn bound_pruning_is_invisible_to_sweep_results() {
        // Acceptance contract: with `LibraryConfig::prune` on, a sweep
        // must produce bit-identical entries to the same sweep with
        // pruning off — the bound pre-pass may only discard candidates
        // that provably cannot be hit or seed. The donor library mixes
        // low constant circuits (near-misses that become seeds) with the
        // all-ones constant (provably hopeless at every threshold).
        let donor_dir = fresh_cache_dir("prune_donor");
        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120;
        let donor_flow = FlowConfig { seed: 0xBAD_5EED, ..cfg.flow.clone() };
        let donor = SweepCache::new(&donor_dir);
        for (i, pattern) in [255u64, 0, 1, 2, 3, 4, 5].into_iter().enumerate() {
            store_constant_donor(&donor, &donor_flow, pattern, i);
        }

        cfg.library = Some(LibraryConfig {
            dir: Some(donor_dir),
            take_hits: false, // constants can't hit 0.02; force the seed path
            prune: false,
            ..LibraryConfig::default()
        });
        let unpruned = run_sweep(&cfg).unwrap();
        assert_eq!(unpruned.stats.library_pruned, 0);

        cfg.library.as_mut().unwrap().prune = true;
        let pruned = run_sweep(&cfg).unwrap();
        assert!(
            pruned.stats.library_pruned > 0,
            "the all-ones constant must be pruned in each consulted ranking"
        );
        assert_entries_bit_identical(&unpruned, &pruned);
        assert_eq!(unpruned.stats.seeded_evolutions, pruned.stats.seeded_evolutions);
        assert_eq!(unpruned.stats.library_hits, pruned.stats.library_hits);
        assert_eq!(unpruned.stats.total_evaluations, pruned.stats.total_evaluations);
    }
}
