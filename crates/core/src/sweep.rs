//! The Pareto sweep driver: one worker pool for the full
//! `(distribution × threshold × run)` grid.
//!
//! Every figure of the paper is some slice of this grid — Fig. 3 alone is
//! 3 distributions × 14 WMED targets × `runs` independent CGP runs.
//! Before this module each figure binary looped over distributions and
//! called [`evolve_multipliers`](crate::evolve_multipliers) once per
//! distribution, which meant one pool tear-down per distribution and, far
//! worse, one freshly built [`MultEvaluator`] per *task* (the evaluator's
//! exhaustive enumeration dwarfs the cost of small CGP runs).
//! [`run_sweep`] instead:
//!
//! * builds each [`MultEvaluator`] **once** per `(width, signed, pmf)` and
//!   shares it across every threshold and run of that distribution via
//!   [`Arc`] (both for the Eq. 1 fitness and the post-hoc statistics);
//! * flattens the whole grid into one task list served by a single
//!   [`apx_pool`] pool, so threads stay busy across distribution
//!   boundaries instead of draining at each one;
//! * records throughput ([`SweepStats`]: wall time, fitness evaluations
//!   per second, thread count) so the performance trajectory of the sweep
//!   layer is tracked release over release (`results/BENCH_sweep.json`).
//!
//! Results are deterministic in the master seed regardless of thread
//! count: per-task RNG streams derive from `(seed, distribution,
//! threshold, run)`, never from scheduling.

use crate::flow::{
    evolve_one, run_tasks, seed_circuit, task_seed, validate_config, EvolvedMultiplier, FlowConfig,
};
use crate::CoreError;
use apx_dist::Pmf;
use apx_gates::Netlist;
use apx_metrics::MultEvaluator;
use apx_rng::Xoshiro256;
use apx_techlib::{estimate_under_pmf, CircuitEstimate, TechLibrary, DEFAULT_CLOCK_MHZ};
use std::sync::Arc;
use std::time::Instant;

/// One named input distribution of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepDist {
    /// Display name (`"D1"`, `"D2"`, `"Du"`, a measured-source tag, …).
    pub name: String,
    /// The distribution itself.
    pub pmf: Pmf,
}

impl SweepDist {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: impl Into<String>, pmf: Pmf) -> Self {
        SweepDist { name: name.into(), pmf }
    }
}

/// Configuration of a full Pareto sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// The distributions to sweep (each gets one shared evaluator).
    pub distributions: Vec<SweepDist>,
    /// Everything else — thresholds, CGP knobs, seed, thread count —
    /// shared with the single-distribution flow.
    pub flow: FlowConfig,
}

/// One completed `(distribution, threshold, run)` task.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// Name of the distribution the multiplier was evolved under.
    pub dist: String,
    /// Index of that distribution in [`SweepConfig::distributions`].
    pub dist_index: usize,
    /// The evolved multiplier with its full evaluation.
    pub multiplier: EvolvedMultiplier,
}

/// Throughput of a sweep — the numbers `results/BENCH_sweep.json` tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepStats {
    /// Wall-clock time of the task grid, in seconds.
    pub wall_seconds: f64,
    /// Total fitness evaluations spent across all tasks.
    pub total_evaluations: u64,
    /// `total_evaluations / wall_seconds`.
    pub evaluations_per_second: f64,
    /// Worker threads the pool ran with.
    pub threads: usize,
    /// Number of `(distribution × threshold × run)` tasks.
    pub tasks: usize,
}

/// Result of [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Every completed task, ordered by `(distribution, threshold, run)`.
    pub entries: Vec<SweepEntry>,
    /// The shared evaluators, one per distribution in configuration
    /// order — reuse them for cross-distribution evaluation (the
    /// off-diagonal panels of Fig. 3) instead of rebuilding.
    pub evaluators: Vec<Arc<MultEvaluator>>,
    /// The exact seed's physical estimate under each distribution.
    pub seed_estimates: Vec<CircuitEstimate>,
    /// The exact seed netlist (the 100 % reference).
    pub seed_netlist: Netlist,
    /// Throughput of this sweep.
    pub stats: SweepStats,
}

impl SweepResult {
    /// The entries evolved under distribution `dist_index`, in
    /// `(threshold, run)` order.
    pub fn entries_for(&self, dist_index: usize) -> impl Iterator<Item = &SweepEntry> {
        self.entries.iter().filter(move |e| e.dist_index == dist_index)
    }

    /// The best (lowest-area) multiplier per threshold for one
    /// distribution, in threshold order.
    #[must_use]
    pub fn best_per_threshold(&self, dist_index: usize) -> Vec<&EvolvedMultiplier> {
        let mut best: Vec<&EvolvedMultiplier> = Vec::new();
        for e in self.entries_for(dist_index) {
            let m = &e.multiplier;
            match best.iter_mut().find(|b| b.threshold == m.threshold) {
                Some(b) => {
                    if m.estimate.area_um2 < b.estimate.area_um2 {
                        *b = m;
                    }
                }
                None => best.push(m),
            }
        }
        best
    }
}

/// Runs the full `(distribution × threshold × run)` grid through one
/// persistent worker pool.
///
/// Each `MultEvaluator` is built once per distribution and shared (via
/// [`Arc`]) by the Eq. 1 fitness of every task and by the post-hoc
/// statistics pass. Task names are `"<dist>_t<threshold>_r<run>"`.
///
/// # Errors
///
/// Returns [`CoreError::BadConfig`] for an empty distribution list, a
/// PMF/width mismatch, empty thresholds or zero iterations, and
/// [`CoreError::WorkerPanic`] if a task panicked.
pub fn run_sweep(cfg: &SweepConfig) -> Result<SweepResult, CoreError> {
    if cfg.distributions.is_empty() {
        return Err(CoreError::BadConfig("no distributions given".into()));
    }
    for d in &cfg.distributions {
        validate_config(&d.pmf, &cfg.flow)?;
    }
    let flow = &cfg.flow;
    let tech = TechLibrary::nangate45();
    let (seed_netlist, seed_chrom) = seed_circuit(flow)?;
    let evaluators: Vec<Arc<MultEvaluator>> = cfg
        .distributions
        .iter()
        .map(|d| MultEvaluator::new(flow.width, flow.signed, &d.pmf).map(Arc::new))
        .collect::<Result<_, _>>()?;

    let tasks: Vec<(usize, usize, usize)> = (0..cfg.distributions.len())
        .flat_map(|di| {
            flow.thresholds
                .iter()
                .enumerate()
                .flat_map(move |(ti, _)| (0..flow.runs_per_threshold).map(move |r| (di, ti, r)))
        })
        .collect();
    let n_tasks = tasks.len();
    let threads = flow.threads.max(1);
    let name_of = |(di, ti, run): (usize, usize, usize)| {
        format!("{}_t{ti}_r{run}", cfg.distributions[di].name)
    };

    let started = Instant::now();
    let results = run_tasks(threads, tasks, name_of, |_, (di, ti, run)| {
        evolve_one(
            flow,
            &cfg.distributions[di].pmf,
            &tech,
            &seed_chrom,
            &evaluators[di],
            ti,
            run,
            task_seed(flow.seed, di, ti, run),
            name_of((di, ti, run)),
        )
    })?;
    let wall_seconds = started.elapsed().as_secs_f64();

    let entries: Vec<SweepEntry> = results
        .into_iter()
        .enumerate()
        .map(|(i, multiplier)| {
            let di = i / (flow.thresholds.len() * flow.runs_per_threshold);
            SweepEntry { dist: cfg.distributions[di].name.clone(), dist_index: di, multiplier }
        })
        .collect();
    let total_evaluations: u64 = entries.iter().map(|e| e.multiplier.evaluations).sum();

    let compact_seed = seed_netlist.compact();
    let seed_estimates: Vec<CircuitEstimate> = cfg
        .distributions
        .iter()
        .enumerate()
        .map(|(di, d)| {
            // Distribution 0 uses exactly the flow's seed-estimate stream
            // (`seed ^ 0x5EED`), so the same config reports the same
            // reference estimate whichever driver ran it.
            let mut est_rng =
                Xoshiro256::from_seed((flow.seed ^ 0x5EED).wrapping_add((di as u64) << 48));
            estimate_under_pmf(
                &compact_seed,
                &tech,
                &d.pmf,
                DEFAULT_CLOCK_MHZ,
                flow.activity_blocks,
                &mut est_rng,
            )
        })
        .collect();

    Ok(SweepResult {
        entries,
        evaluators,
        seed_estimates,
        seed_netlist,
        stats: SweepStats {
            wall_seconds,
            total_evaluations,
            evaluations_per_second: if wall_seconds > 0.0 {
                total_evaluations as f64 / wall_seconds
            } else {
                0.0
            },
            threads,
            tasks: n_tasks,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> SweepConfig {
        SweepConfig {
            distributions: vec![
                SweepDist::new("Dh", Pmf::half_normal(4, 3.0)),
                SweepDist::new("Du", Pmf::uniform(4)),
            ],
            flow: FlowConfig {
                width: 4,
                thresholds: vec![0.0, 0.02],
                iterations: 200,
                runs_per_threshold: 2,
                cols_slack: 20,
                threads: 2,
                activity_blocks: 8,
                ..FlowConfig::default()
            },
        }
    }

    #[test]
    fn sweep_covers_the_full_grid_in_order() {
        let result = run_sweep(&tiny_sweep()).unwrap();
        assert_eq!(result.entries.len(), 2 * 2 * 2);
        assert_eq!(result.stats.tasks, 8);
        assert_eq!(result.evaluators.len(), 2);
        assert_eq!(result.seed_estimates.len(), 2);
        let names: Vec<&str> = result.entries.iter().map(|e| e.multiplier.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "Dh_t0_r0", "Dh_t0_r1", "Dh_t1_r0", "Dh_t1_r1", "Du_t0_r0", "Du_t0_r1", "Du_t1_r0",
                "Du_t1_r1"
            ]
        );
        for e in &result.entries {
            assert!(e.multiplier.stats.wmed <= e.multiplier.threshold + 1e-12);
        }
        // Threshold-0 tasks keep the exact seed.
        assert_eq!(result.entries[0].multiplier.stats.max_abs_error, 0);
        assert!(result.stats.total_evaluations > 0);
        assert!(result.stats.wall_seconds > 0.0);
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let mut cfg = tiny_sweep();
        cfg.flow.iterations = 120;
        cfg.flow.threads = 4;
        let a = run_sweep(&cfg).unwrap();
        cfg.flow.threads = 1;
        let b = run_sweep(&cfg).unwrap();
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.dist, y.dist);
            let (mx, my) = (&x.multiplier, &y.multiplier);
            assert_eq!(mx.name, my.name);
            assert_eq!(mx.chromosome, my.chromosome, "{} differs", mx.name);
            assert_eq!(mx.stats, my.stats, "{} stats differ", mx.name);
            assert_eq!(mx.estimate, my.estimate, "{} estimate differs", mx.name);
        }
        assert_eq!(a.seed_estimates, b.seed_estimates);
    }

    #[test]
    fn best_per_threshold_minimizes_area_within_each_distribution() {
        let result = run_sweep(&tiny_sweep()).unwrap();
        for di in 0..2 {
            let best = result.best_per_threshold(di);
            assert_eq!(best.len(), 2);
            for b in best {
                for e in result.entries_for(di) {
                    if e.multiplier.threshold == b.threshold {
                        assert!(b.estimate.area_um2 <= e.multiplier.estimate.area_um2);
                    }
                }
            }
        }
    }

    #[test]
    fn sweep_rejects_bad_configurations() {
        let empty = SweepConfig { distributions: vec![], flow: FlowConfig::default() };
        assert!(matches!(run_sweep(&empty), Err(CoreError::BadConfig(_))));
        let mut mismatch = tiny_sweep();
        mismatch.distributions.push(SweepDist::new("bad", Pmf::uniform(8)));
        assert!(matches!(run_sweep(&mismatch), Err(CoreError::BadConfig(_))));
        let mut no_thresholds = tiny_sweep();
        no_thresholds.flow.thresholds.clear();
        assert!(matches!(run_sweep(&no_thresholds), Err(CoreError::BadConfig(_))));
    }

    #[test]
    fn single_distribution_sweep_matches_the_flow() {
        // The sweep generalizes `evolve_multipliers`: with one distribution
        // the task seeds and estimate streams coincide, so results must be
        // bit-for-bit identical (only the task names differ).
        let pmf = Pmf::uniform(4);
        let cfg = SweepConfig {
            distributions: vec![SweepDist::new("Du", pmf.clone())],
            flow: FlowConfig {
                width: 4,
                thresholds: vec![0.0, 0.02],
                iterations: 150,
                threads: 1,
                activity_blocks: 8,
                cols_slack: 20,
                ..FlowConfig::default()
            },
        };
        let sweep = run_sweep(&cfg).unwrap();
        let flow = crate::evolve_multipliers(&pmf, &cfg.flow).unwrap();
        assert_eq!(sweep.entries.len(), flow.multipliers.len());
        for (e, m) in sweep.entries.iter().zip(&flow.multipliers) {
            assert_eq!(e.multiplier.chromosome, m.chromosome);
            assert_eq!(e.multiplier.stats, m.stats);
            assert_eq!(e.multiplier.estimate, m.estimate);
        }
        assert_eq!(sweep.seed_estimates[0], flow.seed_estimate);
    }
}
