//! The end-to-end approximation flow (paper §IV / §V-D).

use crate::{CoreError, Eq1Fitness};
use apx_arith::Operator;
use apx_cgp::{evolve_seeded, Chromosome, EvolutionConfig, FunctionSet};
use apx_dist::Pmf;
use apx_gates::Netlist;
use apx_metrics::{CircuitEvaluator, ErrorStats, EvalBackend};
use apx_rng::Xoshiro256;
use apx_techlib::{estimate_under_pmf, CircuitEstimate, TechLibrary, DEFAULT_CLOCK_MHZ};
use std::sync::Arc;

/// Configuration of a circuit-approximation flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// The arithmetic operator being approximated (multiplier by default).
    pub operator: Operator,
    /// Operand width in bits (the paper uses 8).
    pub width: u32,
    /// Two's-complement operands (case study 2) or unsigned (case study 1).
    pub signed: bool,
    /// Target WMED levels `E_i` (fractions, not percent). A level of `0.0`
    /// skips evolution and reports the exact seed — Table I's first row.
    pub thresholds: Vec<f64>,
    /// CGP generations per run (the paper runs ~10^6; scale to taste).
    pub iterations: u64,
    /// Offspring per generation (λ).
    pub lambda: usize,
    /// Max mutated genes per offspring (h).
    pub mutations: usize,
    /// Independent repetitions per threshold (paper: 10–25).
    pub runs_per_threshold: usize,
    /// Spare CGP columns added beyond the seed's gate count.
    pub cols_slack: usize,
    /// Master seed; everything derives deterministically from it.
    pub seed: u64,
    /// Worker threads for the (threshold × run) task grid.
    pub threads: usize,
    /// Stimulus blocks for the power estimate of each result.
    pub activity_blocks: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            operator: Operator::Mul,
            width: 8,
            signed: false,
            thresholds: default_thresholds(),
            iterations: 2_000,
            lambda: 4,
            mutations: 5,
            runs_per_threshold: 1,
            cols_slack: 60,
            seed: 0,
            threads: std::thread::available_parallelism().map_or(1, usize::from),
            activity_blocks: 48,
        }
    }
}

/// The paper's 14 target WMED levels for the Pareto sweeps (Fig. 3),
/// log-spaced over the plotted range 0.0001 % … 20 %.
#[must_use]
pub fn default_thresholds() -> Vec<f64> {
    vec![5e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1]
}

/// Table I's WMED levels: `{0, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 2, 5, 10} %`.
#[must_use]
pub fn table1_thresholds() -> Vec<f64> {
    vec![0.0, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1]
}

/// One evolved approximate circuit with its full evaluation.
#[derive(Debug, Clone)]
pub struct EvolvedCircuit {
    /// `"t<threshold-index>_r<run>"`, stable across reruns.
    pub name: String,
    /// The genotype (serializable via [`Chromosome::to_text`]).
    pub chromosome: Chromosome,
    /// The active-cone phenotype.
    pub netlist: Netlist,
    /// The WMED budget the run was constrained by.
    pub threshold: f64,
    /// Run index within the threshold.
    pub run: usize,
    /// Exhaustive error statistics under the flow's distribution.
    pub stats: ErrorStats,
    /// Physical estimate under the flow's distribution.
    pub estimate: CircuitEstimate,
    /// Fitness evaluations spent evolving it.
    pub evaluations: u64,
}

/// Result of [`evolve_circuits`].
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Every evolved circuit (`thresholds × runs` entries).
    pub circuits: Vec<EvolvedCircuit>,
    /// The exact seed's physical estimate (the 100 % reference).
    pub seed_estimate: CircuitEstimate,
    /// The exact seed netlist.
    pub seed_netlist: Netlist,
}

impl FlowResult {
    /// `(error, power)` pairs for Pareto plotting: WMED vs. power in mW.
    #[must_use]
    pub fn error_power_points(&self) -> Vec<(f64, f64)> {
        self.circuits.iter().map(|m| (m.stats.wmed, m.estimate.power_mw())).collect()
    }

    /// The best (lowest-area) circuit per threshold, in threshold order.
    #[must_use]
    pub fn best_per_threshold(&self) -> Vec<&EvolvedCircuit> {
        let mut best: Vec<&EvolvedCircuit> = Vec::new();
        for m in &self.circuits {
            match best.iter_mut().find(|b| b.threshold == m.threshold) {
                Some(b) => {
                    if m.estimate.area_um2 < b.estimate.area_um2 {
                        *b = m;
                    }
                }
                None => best.push(m),
            }
        }
        best
    }
}

/// Validates the parts of a [`FlowConfig`] shared by [`evolve_circuits`]
/// and [`crate::run_sweep`].
pub(crate) fn validate_config(pmf: &Pmf, cfg: &FlowConfig) -> Result<(), CoreError> {
    if cfg.thresholds.is_empty() {
        return Err(CoreError::BadConfig("no thresholds given".into()));
    }
    if cfg.iterations == 0 {
        return Err(CoreError::BadConfig("iterations must be positive".into()));
    }
    // Width validation is backend-aware: the evaluator the flow is about
    // to construct honours `APX_EVAL_BACKEND`, and the symbolic backend
    // evaluates widths the enumeration backends cannot reach.
    let backend = EvalBackend::from_env();
    if !cfg.operator.supports_width(cfg.width, backend) {
        return Err(CoreError::BadConfig(format!(
            "operand width {} outside the {} operator's evaluable range on the {} backend",
            cfg.width, cfg.operator, backend
        )));
    }
    if pmf.width() != cfg.width {
        return Err(CoreError::BadConfig(format!(
            "pmf width {} does not match operand width {}",
            pmf.width(),
            cfg.width
        )));
    }
    Ok(())
}

/// Builds the exact seed circuit of the flow's operator and its CGP
/// encoding.
pub(crate) fn seed_circuit(cfg: &FlowConfig) -> Result<(Netlist, Chromosome), CoreError> {
    let seed_netlist = cfg.operator.seed_circuit(cfg.width, cfg.signed);
    let funcs = FunctionSet::extended();
    let seed_chrom = Chromosome::from_netlist(
        &seed_netlist,
        &funcs,
        seed_netlist.gate_count() + cfg.cols_slack,
    )?;
    Ok((seed_netlist, seed_chrom))
}

/// One SplitMix64 finalization step (Steele, Lea & Flood's `mix64`):
/// bijective on `u64` with full avalanche, so absorbing each index through
/// it cannot collapse distinct index tuples the way shifted adds did.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decorrelates the per-task RNG streams deterministically: the stream
/// depends only on `(master seed, distribution, threshold, run)`, never on
/// scheduling, so any thread count reproduces the same results bit for
/// bit. The value is also the seed component of the sweep cache key
/// ([`crate::cache::task_key`]), so it must separate *every* distinct
/// index tuple — the former shifted-add packing aliased e.g.
/// `(dist, ti, run) = (1, 0, 0)` with `(0, 2^16, 0)` once a grid grew past
/// 2^16 thresholds, silently reusing one task's RNG stream (and cache
/// entry) for another.
pub(crate) fn task_seed(seed: u64, dist: usize, ti: usize, run: usize) -> u64 {
    let mut s = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    s = splitmix64(s ^ dist as u64);
    s = splitmix64(s ^ ti as u64);
    splitmix64(s ^ run as u64)
}

/// Runs one `(threshold, run)` task: evolve under Eq. 1 (or keep the exact
/// seed at threshold 0), then measure exhaustive error statistics and the
/// physical estimate. The expensive [`CircuitEvaluator`] is shared, not
/// rebuilt per task.
///
/// `seeds` warm-starts the CGP run ([`apx_cgp::evolve_seeded`]): the
/// strictly best of the exact seed and the given candidates becomes the
/// initial parent. The second return value reports which seed won (`None`
/// when the run started from the exact seed — always the case with an
/// empty list, which reproduces the unseeded flow bit for bit).
#[allow(clippy::too_many_arguments)]
pub(crate) fn evolve_one(
    cfg: &FlowConfig,
    pmf: &Pmf,
    tech: &TechLibrary,
    seed_chrom: &Chromosome,
    evaluator: &Arc<CircuitEvaluator>,
    ti: usize,
    run: usize,
    seed: u64,
    name: String,
    seeds: &[Chromosome],
) -> (EvolvedCircuit, Option<usize>) {
    let threshold = cfg.thresholds[ti];
    let (chromosome, evaluations, initial_seed) = if threshold == 0.0 {
        (seed_chrom.clone(), 0, None)
    } else {
        // Passed by value as a `FitnessFn`: the evolution loop rebases its
        // incremental simulation state onto every new parent, so offspring
        // only re-simulate their mutated fanout cones.
        let fitness = Eq1Fitness::with_evaluator(Arc::clone(evaluator), tech.clone(), threshold);
        let result = evolve_seeded(
            seed_chrom,
            seeds,
            fitness,
            &EvolutionConfig {
                lambda: cfg.lambda,
                mutations: cfg.mutations,
                max_iterations: cfg.iterations,
                seed,
                parallel: false, // outer-level parallelism is in charge
                target_fitness: None,
                keep_history: false,
            },
        );
        (result.best, result.evaluations, result.initial_seed)
    };
    let netlist = chromosome.decode_active();
    let stats = evaluator.stats(&netlist);
    let mut est_rng = Xoshiro256::from_seed(seed ^ 0xE57);
    let estimate = estimate_under_pmf(
        &netlist,
        tech,
        pmf,
        DEFAULT_CLOCK_MHZ,
        cfg.activity_blocks,
        &mut est_rng,
    );
    (
        EvolvedCircuit { name, chromosome, netlist, threshold, run, stats, estimate, evaluations },
        initial_seed,
    )
}

/// Maps `worker` over `tasks` on an [`apx_pool`] pool, converting a
/// captured task panic into a [`CoreError::WorkerPanic`] that names the
/// failing task (instead of the poisoned-lock panic the old ad-hoc
/// scaffolding produced). Names are rendered up front so the task list —
/// which may carry seed chromosomes and netlists in library mode — is
/// moved into the pool, not deep-cloned for the error path.
pub(crate) fn run_tasks<T, R, W, N>(
    threads: usize,
    tasks: Vec<T>,
    name_of: N,
    worker: W,
) -> Result<Vec<R>, CoreError>
where
    T: Send,
    R: Send,
    W: Fn(usize, T) -> R + Sync,
    N: Fn(&T) -> String,
{
    let names: Vec<String> = tasks.iter().map(&name_of).collect();
    apx_pool::scope_map(threads.max(1), tasks, worker)
        .map_err(|p| CoreError::WorkerPanic { task: names[p.index].clone(), message: p.message })
}

/// Runs the complete flow: for every threshold `E_i` and every run, evolve
/// a circuit of the configured operator minimizing area under
/// `WMED_D ≤ E_i` (Eq. 1), then measure
/// its exhaustive error statistics and physical cost under `pmf`.
///
/// Work items run on a shared [`apx_pool`] worker pool with per-slot
/// result writes; results are fully deterministic in `cfg.seed` regardless
/// of thread count, and the WMED evaluator is built once and shared by
/// every task.
///
/// # Errors
///
/// Returns [`CoreError`] on invalid configuration (zero width, empty
/// thresholds, PMF/width mismatch, …) and [`CoreError::WorkerPanic`] if a
/// task panicked.
pub fn evolve_circuits(pmf: &Pmf, cfg: &FlowConfig) -> Result<FlowResult, CoreError> {
    validate_config(pmf, cfg)?;
    let tech = TechLibrary::nangate45();
    let (seed_netlist, seed_chrom) = seed_circuit(cfg)?;
    let evaluator =
        Arc::new(CircuitEvaluator::for_operator(cfg.operator, cfg.width, cfg.signed, pmf)?);

    let tasks: Vec<(usize, usize)> = cfg
        .thresholds
        .iter()
        .enumerate()
        .flat_map(|(ti, _)| (0..cfg.runs_per_threshold).map(move |r| (ti, r)))
        .collect();

    let circuits = run_tasks(
        cfg.threads,
        tasks,
        |(ti, run)| format!("t{ti}_r{run}"),
        |_, (ti, run)| {
            evolve_one(
                cfg,
                pmf,
                &tech,
                &seed_chrom,
                &evaluator,
                ti,
                run,
                task_seed(cfg.seed, 0, ti, run),
                format!("t{ti}_r{run}"),
                &[],
            )
            .0
        },
    )?;

    let mut est_rng = Xoshiro256::from_seed(cfg.seed ^ 0x5EED);
    let seed_estimate = estimate_under_pmf(
        &seed_netlist.compact(),
        &tech,
        pmf,
        DEFAULT_CLOCK_MHZ,
        cfg.activity_blocks,
        &mut est_rng,
    );
    Ok(FlowResult { circuits, seed_estimate, seed_netlist })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> FlowConfig {
        FlowConfig {
            width: 4,
            thresholds: vec![0.0, 0.02],
            iterations: 400,
            runs_per_threshold: 2,
            cols_slack: 20,
            threads: 2,
            activity_blocks: 8,
            ..Default::default()
        }
    }

    #[test]
    fn flow_produces_constrained_smaller_circuits() {
        let pmf = Pmf::half_normal(4, 3.0);
        let result = evolve_circuits(&pmf, &tiny_cfg()).unwrap();
        assert_eq!(result.circuits.len(), 4);
        let seed_area = result.seed_estimate.area_um2;
        for m in &result.circuits {
            assert!(
                m.stats.wmed <= m.threshold + 1e-12,
                "{}: wmed {} over budget {}",
                m.name,
                m.stats.wmed,
                m.threshold
            );
            assert!(m.estimate.area_um2 <= seed_area + 1e-9, "{} grew", m.name);
        }
        // The relaxed-budget runs must actually shrink the circuit.
        let relaxed: Vec<_> = result.circuits.iter().filter(|m| m.threshold > 0.0).collect();
        assert!(
            relaxed.iter().any(|m| m.estimate.area_um2 < seed_area * 0.9),
            "400 iterations should shave >10% area at WMED 2%"
        );
    }

    #[test]
    fn flow_is_deterministic_across_thread_counts() {
        let pmf = Pmf::uniform(4);
        let mut cfg = tiny_cfg();
        cfg.thresholds = vec![0.01, 0.05];
        cfg.runs_per_threshold = 2;
        cfg.iterations = 150;
        cfg.threads = 4;
        let a = evolve_circuits(&pmf, &cfg).unwrap();
        cfg.threads = 1;
        let b = evolve_circuits(&pmf, &cfg).unwrap();
        assert_eq!(a.circuits.len(), b.circuits.len());
        // Bit-for-bit: chromosomes, exhaustive statistics and physical
        // estimates must not depend on the thread count.
        for (x, y) in a.circuits.iter().zip(&b.circuits) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.chromosome, y.chromosome, "{} differs", x.name);
            assert_eq!(x.stats, y.stats, "{} stats differ", x.name);
            assert_eq!(x.estimate, y.estimate, "{} estimate differs", x.name);
            assert_eq!(x.evaluations, y.evaluations);
        }
        assert_eq!(a.seed_estimate, b.seed_estimate);
    }

    #[test]
    fn panicking_worker_surfaces_the_task_name() {
        // Regression: the old scheme wrapped the whole result vector in
        // one Mutex, so a panicking task poisoned it and the caller saw
        // "no poisoned worker" instead of the real error.
        let tasks = vec![(0usize, 0usize), (0, 1), (1, 0), (1, 1)];
        let err = run_tasks(
            2,
            tasks,
            |(ti, run)| format!("t{ti}_r{run}"),
            |_, (ti, run)| {
                assert!(!(ti == 1 && run == 0), "fitness blew up");
                ti + run
            },
        )
        .unwrap_err();
        match err {
            CoreError::WorkerPanic { task, message } => {
                assert_eq!(task, "t1_r0", "the surfaced error names the failing task");
                assert!(message.contains("fitness blew up"), "message was: {message}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn signed_flow_uses_baugh_wooley_seed() {
        let pmf = Pmf::signed_normal(4, 0.0, 3.0);
        let cfg = FlowConfig {
            width: 4,
            signed: true,
            thresholds: vec![0.0],
            iterations: 10,
            threads: 1,
            activity_blocks: 4,
            ..Default::default()
        };
        let result = evolve_circuits(&pmf, &cfg).unwrap();
        // Threshold 0 keeps the exact seed: zero error.
        assert_eq!(result.circuits[0].stats.max_abs_error, 0);
        assert_eq!(result.circuits[0].evaluations, 0);
    }

    #[test]
    fn best_per_threshold_selects_minimum_area() {
        let pmf = Pmf::uniform(4);
        let result = evolve_circuits(&pmf, &tiny_cfg()).unwrap();
        let best = result.best_per_threshold();
        assert_eq!(best.len(), 2);
        for b in best {
            for m in result.circuits.iter().filter(|m| m.threshold == b.threshold) {
                assert!(b.estimate.area_um2 <= m.estimate.area_um2);
            }
        }
    }

    #[test]
    fn task_seed_never_aliases_distinct_tasks() {
        // Regression: the former shifted-add packing computed
        // `seed·φ + (dist << 48) + (ti << 32) + run + 1`, so a threshold
        // index ≥ 2^16 carried straight into the distribution bits and
        // two different tasks shared one RNG stream. The exact old
        // aliasing pair must now map to different seeds …
        assert_ne!(task_seed(0, 1, 0, 0), task_seed(0, 0, 1 << 16, 0));
        assert_ne!(task_seed(7, 2, 0, 5), task_seed(7, 0, 2 << 16, 4));
        // … and a large index grid must stay collision-free (the grid
        // deliberately crosses both overflow boundaries of the old
        // packing: ti near 2^16·k and run near 2^32).
        let mut seen = std::collections::HashMap::new();
        for seed in [0u64, 0xF163, u64::MAX] {
            for dist in [0usize, 1, 2, 3, 31] {
                for ti in (0..48).chain([1 << 16, (1 << 16) + 1, 1 << 20, 1 << 17]) {
                    for run in [0usize, 1, 2, 3, 4, 5, 6, 7, 1 << 16, 1 << 20] {
                        let s = task_seed(seed, dist, ti, run);
                        if let Some(prev) = seen.insert(s, (seed, dist, ti, run)) {
                            panic!("seed collision: {prev:?} vs {:?}", (seed, dist, ti, run));
                        }
                    }
                }
            }
        }
        assert_eq!(seen.len(), 3 * 5 * 52 * 10);
    }

    #[test]
    fn config_errors_are_reported() {
        let pmf = Pmf::uniform(8);
        let empty = FlowConfig { thresholds: vec![], ..Default::default() };
        assert!(matches!(evolve_circuits(&pmf, &empty), Err(CoreError::BadConfig(_))));
        let mismatch = FlowConfig { width: 4, ..Default::default() };
        assert!(matches!(evolve_circuits(&pmf, &mismatch), Err(CoreError::BadConfig(_))));
        let zero_iters = FlowConfig { iterations: 0, ..Default::default() };
        assert!(evolve_circuits(&Pmf::uniform(8), &zero_iters).is_err());
    }
}
