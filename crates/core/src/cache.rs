//! Content-addressed persistence for completed sweep tasks.
//!
//! At paper scale one `(distribution × threshold × run)` task is a CGP run
//! of ~10^6 generations — hours of compute per grid — yet the figure
//! binaries used to re-evolve identical tasks from scratch and a killed
//! sweep lost everything. This module gives [`run_sweep`](crate::run_sweep)
//! a durable memo: every completed task is written to disk keyed by *what
//! was computed*, so re-running the same configuration (the same binary
//! after Ctrl-C, a figure regenerated at the same scale, another shard of
//! a distributed run) loads the finished entries and computes only the
//! missing tail. Note that the master seed participates in every key (via
//! the per-task seed), so two binaries only share entries if they
//! configure the *same* seeded grid — the stock figure binaries use
//! distinct seeds and therefore maintain disjoint key sets in one shared
//! directory.
//!
//! # Key derivation
//!
//! A cache key is a 128-bit FNV-1a digest (two 64-bit passes with distinct
//! offset bases) of a canonical description of everything that determines
//! a task's result bit for bit:
//!
//! * the distribution as content — [`Pmf::content_digest`] over the exact
//!   probability bit patterns;
//! * the component class and operand encoding: the [`Operator`] name,
//!   `width`, `signed`;
//! * the task itself: the WMED `threshold` (IEEE-754 bits, not a decimal
//!   rendering), the `run` index, and the per-task RNG seed (which folds
//!   in the master seed and the task's grid position, see
//!   `flow::task_seed`);
//! * the CGP knobs: `iterations`, `lambda`, `mutations`, `cols_slack`;
//! * the estimate knob: `activity_blocks`;
//! * a format tag (`apx-sweep-task v2`) — bump it whenever the evolution
//!   or estimation algorithm changes meaning, which atomically orphans
//!   every stale entry instead of replaying it.
//!
//! Anything *not* in the key must not influence the stored bytes: display
//! names, distribution order, thread counts and shard splits all map to
//! the same entries, which is what makes a warm run bit-identical to a
//! cold one.
//!
//! # Entry format
//!
//! One task per file, `<32 hex digits>.sweep` under the cache directory, a
//! line-oriented text format in the spirit of `apx_cgp::serialize`:
//!
//! ```text
//! apxsweep v3
//! key 9f…e2
//! op mul 8 unsigned
//! threshold 3f50624dd2f1a9fc
//! run 0
//! evaluations 804
//! stats 3f1a… 3f08… 3f30… 3fe0… 3f2b… 37
//! estimate 40c3… 3ff4… 4059… 408e… 4093…
//! cgp 16 16 490
//! funcs buf not and nand or nor xor xnor
//! genes 0 1 2 …
//! ```
//!
//! The `op` line records the component class and operand encoding so a
//! directory can be *scanned* — [`SweepCache::scan`] turns an overnight
//! cache into the raw material of
//! [`crate::library::ComponentLibrary`], which indexes entries by
//! `(operator, width, signedness)` and re-scores them under new
//! distributions. v3 prefixed the operator name to the line (v2 carried
//! only `width signed`, v1 had no line at all); older entries simply
//! stop matching and are recomputed; strict rejection is the upgrade
//! path.
//!
//! Every `f64` is stored as the 16-hex-digit IEEE-754 bit pattern —
//! round-tripping is exact by construction, never `{:.17}`-approximate.
//! The phenotype netlist is not stored: it is re-derived from the
//! chromosome (`decode_active` is deterministic), and the chromosome line
//! reuses the existing `.cgp` serialization. Loading is strict: a missing
//! line, a short field list, a key mismatch or trailing bytes all reject
//! the entry (the caller recomputes — corruption can cost time, never
//! correctness).
//!
//! # Atomicity
//!
//! [`SweepCache::store`] writes to a per-process temp file in the cache
//! directory and `rename`s it into place, so a killed run leaves either no
//! entry or a complete one — never a torn file that a resume would have to
//! distrust. Concurrent writers (two shards finishing the same key) race
//! benignly: both rename complete, identical bytes. A writer killed
//! *between* write and rename does leave its `.{key}.tmp.{pid}` file
//! behind; such litter is invisible to loads and scans, counted by
//! [`cache_dir_stats`] (`tmp_litter`), and deleted by [`gc_cache_dir`]
//! once stale.
//!
//! # Garbage collection
//!
//! [`gc_cache_dir`] is the eviction policy an orchestrated overnight
//! exploration runs after its grid completes: keep every live-grid key
//! (exact resume stays bit-identical) plus, per
//! `(operator, width, signedness)`, the `(WMED, area)` Pareto set of
//! components under the live
//! distributions (what autoAx-style library reuse could still take), and
//! drop dominated historical entries, corrupt files and stale temp
//! litter. See [`GcConfig`] / [`GcReport`].
//!
//! The sweep driver decides *where* the cache lives
//! ([`SweepConfig::cache_dir`](crate::SweepConfig)); the figure binaries
//! default it to `results/cache/` and expose the `APX_CACHE_DIR`
//! environment knob (empty or `off` disables caching entirely).

use crate::flow::{EvolvedCircuit, FlowConfig};
use crate::library::{ComponentLibrary, Provenance};
use crate::pareto_indices;
use apx_arith::{EvalBackend, Operator};
use apx_cgp::Chromosome;
use apx_dist::{fnv1a64, Pmf, FNV1A64_OFFSET};
use apx_metrics::{CircuitEvaluator, ErrorStats};
use apx_techlib::{CircuitEstimate, TechLibrary};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// Version tag mixed into every key and written into every entry. Bump it
/// whenever the semantics of a stored task change (evolution algorithm,
/// estimate model, seed derivation): old entries then simply stop
/// matching instead of resurfacing as wrong results.
const FORMAT_TAG: &str = "apx-sweep-task v2";

/// Magic first line of an entry file. Bumped to v3 when the operator name
/// joined the `op` line (v2 had added the line with only the operand
/// encoding); v1/v2 files are rejected by the strict loader and
/// transparently recomputed.
const MAGIC: &str = "apxsweep v3";

/// A 128-bit content-addressed cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// The key as 32 lowercase hex digits (also the entry's file stem).
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the 32-hex-digit form produced by [`CacheKey::hex`] (e.g. a
    /// cache entry's file stem). `None` on any other shape.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        Some(CacheKey {
            hi: u64::from_str_radix(&s[..16], 16).ok()?,
            lo: u64::from_str_radix(&s[16..], 16).ok()?,
        })
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Derives the content-addressed key of one sweep task (see the module
/// docs for exactly which inputs participate and why).
#[must_use]
pub fn task_key(
    flow: &FlowConfig,
    pmf: &Pmf,
    threshold: f64,
    run: usize,
    task_seed: u64,
) -> CacheKey {
    let canonical = format!(
        "{FORMAT_TAG}\npmf {:016x}\nop {} width {} signed {}\nthreshold {:016x}\nrun {run}\n\
         task_seed {task_seed:016x}\niterations {} lambda {} mutations {} cols_slack {}\n\
         activity_blocks {}\n",
        pmf.content_digest(),
        flow.operator.name(),
        flow.width,
        flow.signed,
        threshold.to_bits(),
        flow.iterations,
        flow.lambda,
        flow.mutations,
        flow.cols_slack,
        flow.activity_blocks,
    );
    // Two independent 64-bit passes (standard offset basis, then a
    // decorrelated one) make accidental collisions across a design-space
    // exploration astronomically unlikely without any external hash dep.
    CacheKey {
        hi: fnv1a64(canonical.as_bytes(), FNV1A64_OFFSET),
        lo: fnv1a64(canonical.as_bytes(), FNV1A64_OFFSET ^ 0x9E37_79B9_7F4A_7C15),
    }
}

/// A directory of completed sweep tasks, one file per [`CacheKey`].
#[derive(Debug, Clone)]
pub struct SweepCache {
    dir: PathBuf,
}

impl SweepCache {
    /// Opens (without touching the filesystem) a cache rooted at `dir`.
    /// The directory is created lazily on the first [`store`](Self::store).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SweepCache { dir: dir.into() }
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{}.sweep", key.hex()))
    }

    /// Loads the completed task stored under `key`, or `None` when the
    /// entry is absent, truncated, corrupt or belongs to a different key —
    /// a rejected entry is indistinguishable from a miss, so the caller
    /// always falls back to recomputing (and then overwrites the bad
    /// file).
    ///
    /// The returned circuit carries the *stored* task data; its display
    /// `name` is whatever the storing run used, and [`run_sweep`]
    /// (crate::run_sweep) re-stamps it for the current configuration.
    #[must_use]
    pub fn load(&self, key: CacheKey) -> Option<EvolvedCircuit> {
        let text = std::fs::read_to_string(self.path_of(key)).ok()?;
        entry_from_text(&text, key).map(|e| {
            // Debug builds statically lint every loaded netlist: a parseable
            // entry whose netlist still violates its declared component
            // contract means a poisoned cache directory (or a codec bug) and
            // should fail loudly where tests can see it, not deep inside an
            // evaluator assert.
            debug_assert!(
                !apx_verify::has_errors(&apx_verify::lint_component(
                    &e.circuit.netlist,
                    e.op,
                    e.width
                )),
                "cache entry {key} fails the static netlist lint: {:?}",
                apx_verify::lint_component(&e.circuit.netlist, e.op, e.width)
            );
            e.circuit
        })
    }

    /// Atomically stores `entry` under `key`: the bytes are written to a
    /// per-process temp file in the cache directory and renamed into
    /// place, so no interleaving of crashes and concurrent writers can
    /// leave a torn file behind.
    ///
    /// `op`, `width` and `signed` record the component class and operand
    /// encoding in the entry's `op` line so directory scans can index the
    /// entry without guessing.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (unwritable directory, full disk). Callers
    /// inside the sweep treat a failed store as "cache disabled for this
    /// task" — the computed result is still returned.
    pub fn store(
        &self,
        key: CacheKey,
        entry: &EvolvedCircuit,
        op: Operator,
        width: u32,
        signed: bool,
    ) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path_of(key);
        let tmp = self.dir.join(format!(".{}.tmp.{}", key.hex(), std::process::id()));
        std::fs::write(&tmp, entry_to_text(entry, key, op, width, signed))?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(path),
            Err(e) => {
                // Never leave temp litter next to real entries.
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Scans the whole directory: every intact `*.sweep` entry, keyed and
    /// tagged with its operand encoding, in deterministic (key-sorted)
    /// order regardless of filesystem enumeration order.
    ///
    /// Corrupt, truncated, foreign or v1 files are silently skipped — a
    /// scan is a best-effort harvest (the library layer treats the cache
    /// as found material), unlike the keyed [`SweepCache::load`] path
    /// where a rejected entry triggers a recompute. A missing directory
    /// scans as empty.
    #[must_use]
    pub fn scan(&self) -> Vec<ScannedEntry> {
        let Ok(read) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut entries: Vec<ScannedEntry> = read
            .filter_map(Result::ok)
            .filter_map(|f| {
                let path = f.path();
                let stem = path.file_name()?.to_str()?.strip_suffix(".sweep")?;
                let key = CacheKey::from_hex(stem)?;
                let text = std::fs::read_to_string(&path).ok()?;
                entry_from_text(&text, key)
            })
            .collect();
        entries.sort_by_key(|e| (e.key.hi, e.key.lo));
        entries
    }
}

/// One entry harvested by [`SweepCache::scan`].
#[derive(Debug, Clone)]
pub struct ScannedEntry {
    /// The content-addressed key the entry was stored under.
    pub key: CacheKey,
    /// The component class (from the entry's `op` line).
    pub op: Operator,
    /// Operand width in bits (from the entry's `op` line).
    pub width: u32,
    /// Two's-complement operand encoding.
    pub signed: bool,
    /// The stored task result.
    pub circuit: EvolvedCircuit,
}

/// Aggregate shape of a cache directory ([`cache_dir_stats`]) — the
/// maintenance view an operator checks before pointing a library-mode
/// sweep (or, later, an orchestrator's garbage collector) at an overnight
/// cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheDirStats {
    /// `*.sweep` files present.
    pub files: usize,
    /// Files that parse as intact entries.
    pub entries: usize,
    /// Files rejected by the strict loader (torn, foreign, stale format).
    pub corrupt: usize,
    /// Total size of all `*.sweep` files in bytes.
    pub total_bytes: u64,
    /// Orphaned writer temp files (`.{key}.tmp.{pid}`): litter left by a
    /// writer killed between `fs::write` and `rename` in
    /// [`SweepCache::store`]. Invisible to loads and scans, but they
    /// accumulate forever unless a [`gc_cache_dir`] pass removes them.
    pub tmp_litter: usize,
    /// Intact entries per `(operator, width, signed)` component class and
    /// operand encoding.
    pub per_op: std::collections::BTreeMap<(Operator, u32, bool), usize>,
}

/// Walks `dir` and summarizes its `*.sweep` population: file and intact
/// entry counts, total bytes, and per-`(operator, width, signedness)`
/// entry counts. A missing directory reports all zeros.
#[must_use]
pub fn cache_dir_stats(dir: &Path) -> CacheDirStats {
    let mut stats = CacheDirStats::default();
    let Ok(read) = std::fs::read_dir(dir) else {
        return stats;
    };
    for f in read.filter_map(Result::ok) {
        let path = f.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if is_tmp_litter(name) {
            stats.tmp_litter += 1;
            continue;
        }
        let Some(stem) = name.strip_suffix(".sweep") else {
            continue;
        };
        stats.files += 1;
        stats.total_bytes += f.metadata().map_or(0, |m| m.len());
        let parsed = CacheKey::from_hex(stem).and_then(|key| {
            let text = std::fs::read_to_string(&path).ok()?;
            entry_from_text(&text, key)
        });
        match parsed {
            Some(e) => {
                stats.entries += 1;
                *stats.per_op.entry((e.op, e.width, e.signed)).or_insert(0) += 1;
            }
            None => stats.corrupt += 1,
        }
    }
    stats
}

/// Whether `name` matches the `.{key}.tmp.{pid}` pattern of
/// [`SweepCache::store`]'s temp files. Dotfiles that real entries can
/// never collide with — entry names are bare hex stems.
fn is_tmp_litter(name: &str) -> bool {
    name.starts_with('.') && name.contains(".tmp.")
}

/// Policy of one [`gc_cache_dir`] pass.
///
/// Survival is the union of two rules; everything else in the directory
/// that belongs to the cache (entries, corrupt files, stale temp litter)
/// is deleted:
///
/// * **live keys** — every intact entry whose [`CacheKey`] is in `keep`
///   survives untouched. Callers pass the content-addressed keys of the
///   grid they are still serving ([`crate::grid_keys`]), so an exact
///   warm resume stays bit-identical after collection;
/// * **Pareto front** — per `(operator, width, signedness)` group, the
///   autoAx-style component view: all candidates are re-scored
///   ([`ComponentLibrary::rescore`]) under each matching-width
///   distribution in `distributions` and every `(WMED, area)` front
///   member survives (union over the distributions). Dominated historical
///   entries — the ones a library-mode sweep would never take — are
///   dropped. A group no distribution applies to falls back to the
///   *stored* statistics (the WMED each entry was evolved under), so GC
///   never silently deletes a whole foreign group.
#[derive(Debug, Clone)]
pub struct GcConfig {
    /// Content-addressed keys of the live grid — kept unconditionally.
    pub keep: HashSet<CacheKey>,
    /// Distributions to re-score candidates under (typically the live
    /// sweep's PMFs). Applied to every `(operator, width, signedness)`
    /// group of matching width.
    pub distributions: Vec<Pmf>,
    /// Worker threads for the re-scoring passes.
    pub threads: usize,
    /// Temp files younger than this are left alone — they may belong to a
    /// *live* writer between `fs::write` and `rename`. An orchestrator
    /// that just joined all of its shard processes can safely use
    /// [`Duration::ZERO`].
    pub tmp_ttl: Duration,
    /// Collapse functional-equivalence classes among the *Pareto-kept*
    /// survivors: entries proven (by `apx_verify`'s canonical functional
    /// digest) to compute the same function are reduced to one survivor
    /// per class — the selection-preferred member, smallest stored area
    /// with ties broken by key. Live keys ([`GcConfig::keep`]) are never
    /// collapsed, and survivors are still never rewritten; equivalence
    /// only removes redundant files. Entries whose planes outgrow the
    /// semantic node budget keep their own class.
    pub collapse_equiv: bool,
}

impl Default for GcConfig {
    /// Keep nothing special, no re-scoring distributions (stored-stats
    /// fronts), one thread, a 15-minute temp-file grace period — orders
    /// of magnitude longer than any write-to-rename window — and
    /// equivalence-class collapsing on.
    fn default() -> Self {
        GcConfig {
            keep: HashSet::new(),
            distributions: Vec::new(),
            threads: 1,
            tmp_ttl: Duration::from_secs(15 * 60),
            collapse_equiv: true,
        }
    }
}

/// What one [`gc_cache_dir`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Intact entries found before collection.
    pub entries_before: usize,
    /// Entries kept because their key is in [`GcConfig::keep`].
    pub kept_live: usize,
    /// Additional entries kept as `(WMED, area)` Pareto front members.
    pub kept_pareto: usize,
    /// Dominated historical entries deleted.
    pub evicted: usize,
    /// Corrupt / stale-format `*.sweep` files deleted (they are treated
    /// as misses by every reader, so removal is always safe).
    pub corrupt_removed: usize,
    /// Stale writer temp files deleted.
    pub tmp_removed: usize,
    /// Pareto-kept entries dropped as functional-equivalence duplicates
    /// of another survivor ([`GcConfig::collapse_equiv`]); these are
    /// deleted and counted under [`evicted`](GcReport::evicted) as well.
    pub collapsed: usize,
    /// Total bytes reclaimed.
    pub bytes_freed: u64,
}

impl GcReport {
    /// Intact entries surviving the pass.
    #[must_use]
    pub fn kept(&self) -> usize {
        self.kept_live + self.kept_pareto
    }
}

/// Removes `path`, tolerating a concurrent removal, and adds its size to
/// `bytes_freed`. Returns whether a file was actually deleted.
fn remove_counted(path: &Path, bytes_freed: &mut u64) -> io::Result<bool> {
    let len = std::fs::metadata(path).map_or(0, |m| m.len());
    match std::fs::remove_file(path) {
        Ok(()) => {
            *bytes_freed += len;
            Ok(true)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(e),
    }
}

/// Garbage-collects a sweep cache directory (policy: [`GcConfig`]).
///
/// Without eviction an overnight design-space exploration is append-only:
/// every historical key stays behind forever and `cache_stats` only
/// watches the pile grow. This pass keeps exactly what still has value —
/// the live grid's exact checkpoints plus the per-encoding Pareto set of
/// components a library-mode sweep could ever take — and deletes the
/// dominated remainder, corrupt files and stale temp litter. Surviving
/// files are never rewritten, so everything kept is bit-identical before
/// and after.
///
/// A missing directory is a no-op reporting all zeros.
///
/// # Errors
///
/// Propagates I/O errors other than concurrent-removal races (an entry
/// vanishing between scan and delete is tolerated).
pub fn gc_cache_dir(dir: &Path, cfg: &GcConfig) -> io::Result<GcReport> {
    let mut report = GcReport::default();
    let read = match std::fs::read_dir(dir) {
        Ok(read) => read,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };

    // One walk classifies everything; foreign files (no `.sweep` suffix,
    // not writer litter) are never touched.
    let now = SystemTime::now();
    let mut scanned: Vec<ScannedEntry> = Vec::new();
    let mut corrupt: Vec<PathBuf> = Vec::new();
    let mut stale_tmp: Vec<PathBuf> = Vec::new();
    for f in read.filter_map(Result::ok) {
        let path = f.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if is_tmp_litter(name) {
            let stale = f
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| now.duration_since(t).ok())
                .is_some_and(|age| age >= cfg.tmp_ttl);
            if stale {
                stale_tmp.push(path);
            }
            continue;
        }
        let Some(stem) = name.strip_suffix(".sweep") else {
            continue;
        };
        let parsed = CacheKey::from_hex(stem).and_then(|key| {
            let text = std::fs::read_to_string(&path).ok()?;
            entry_from_text(&text, key)
        });
        match parsed {
            Some(e) => scanned.push(e),
            None => corrupt.push(path),
        }
    }
    // Key order, like `SweepCache::scan`: survivor selection (and dedup
    // provenance) must not depend on filesystem enumeration order.
    scanned.sort_by_key(|e| (e.key.hi, e.key.lo));
    report.entries_before = scanned.len();

    let mut survivors: HashSet<CacheKey> = HashSet::new();
    for e in &scanned {
        if cfg.keep.contains(&e.key) {
            survivors.insert(e.key);
        }
    }
    report.kept_live = survivors.len();

    let groups: BTreeSet<(Operator, u32, bool)> =
        scanned.iter().map(|e| (e.op, e.width, e.signed)).collect();
    if !groups.is_empty() {
        // The candidate library (a deep copy of every netlist) is only
        // worth building when some group will actually be re-scored; a
        // stored-stats-only pass reads `scanned` directly.
        let needs_rescoring =
            groups.iter().any(|(_, w, _)| cfg.distributions.iter().any(|p| p.width() == *w));
        let mut lib = ComponentLibrary::new();
        if needs_rescoring {
            for e in &scanned {
                lib.ingest_scanned(e.clone());
            }
        }
        let tech = TechLibrary::nangate45();
        for &(op, width, signed) in &groups {
            let mut rescored_any = false;
            for pmf in cfg.distributions.iter().filter(|p| p.width() == width) {
                // Construction only fails on width/PMF mismatches, both
                // excluded by the filter above — but stay graceful.
                let Ok(evaluator) = CircuitEvaluator::for_operator(op, width, signed, pmf) else {
                    continue;
                };
                let rescored = lib.rescore(&evaluator, &tech, cfg.threads.max(1));
                for c in rescored.pareto() {
                    if let Provenance::Evolved { source_key } = c.entry.provenance {
                        survivors.insert(source_key);
                    }
                }
                rescored_any = true;
            }
            if !rescored_any {
                // No distribution covers this group: keep the front of
                // the stored statistics instead of deleting blindly.
                let group: Vec<&ScannedEntry> = scanned
                    .iter()
                    .filter(|e| e.op == op && e.width == width && e.signed == signed)
                    .collect();
                let points: Vec<(f64, f64)> = group
                    .iter()
                    .map(|e| (e.circuit.stats.wmed, e.circuit.estimate.area_um2))
                    .collect();
                for i in pareto_indices(&points) {
                    survivors.insert(group[i].key);
                }
            }
        }
    }
    if cfg.collapse_equiv {
        // Equivalence-class collapse: among the *Pareto-kept* survivors
        // of one (op, width, signed) group, entries with the same
        // canonical functional digest compute the same function and
        // would re-score identically under every distribution — one
        // representative is enough. Keep the selection-preferred member
        // (smallest stored area, ties by key, matching the library's
        // `dedup_semantic` order) and drop the rest. Live keys are
        // exempt, and digest failures (budget/width) keep their entry.
        let mut best: HashMap<(Operator, u32, bool, u128), (f64, CacheKey)> = HashMap::new();
        for e in &scanned {
            if !survivors.contains(&e.key) || cfg.keep.contains(&e.key) {
                continue;
            }
            let Some(digest) = apx_verify::functional_digest(&e.circuit.netlist) else {
                continue;
            };
            let class = (e.op, e.width, e.signed, digest);
            let candidate = (e.circuit.estimate.area_um2, e.key);
            match best.entry(class) {
                Entry::Vacant(slot) => {
                    slot.insert(candidate);
                }
                Entry::Occupied(mut slot) => {
                    let incumbent = *slot.get();
                    let better = candidate.0.total_cmp(&incumbent.0).then_with(|| {
                        (candidate.1.hi, candidate.1.lo).cmp(&(incumbent.1.hi, incumbent.1.lo))
                    });
                    let loser = if better == Ordering::Less {
                        slot.insert(candidate);
                        incumbent.1
                    } else {
                        candidate.1
                    };
                    survivors.remove(&loser);
                    report.collapsed += 1;
                }
            }
        }
    }
    report.kept_pareto = survivors.len() - report.kept_live;

    let cache = SweepCache::new(dir);
    for e in &scanned {
        if !survivors.contains(&e.key)
            && remove_counted(&cache.path_of(e.key), &mut report.bytes_freed)?
        {
            report.evicted += 1;
        }
    }
    for path in &corrupt {
        if remove_counted(path, &mut report.bytes_freed)? {
            report.corrupt_removed += 1;
        }
    }
    for path in &stale_tmp {
        if remove_counted(path, &mut report.bytes_freed)? {
            report.tmp_removed += 1;
        }
    }
    Ok(report)
}

fn push_f64_bits(out: &mut String, values: &[f64]) {
    for v in values {
        let _ = write!(out, " {:016x}", v.to_bits());
    }
}

/// Serializes one completed task to the entry format (module docs).
fn entry_to_text(
    m: &EvolvedCircuit,
    key: CacheKey,
    op: Operator,
    width: u32,
    signed: bool,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{MAGIC}");
    let _ = writeln!(s, "key {}", key.hex());
    let _ = writeln!(s, "op {} {width} {}", op.name(), if signed { "signed" } else { "unsigned" });
    let _ = writeln!(s, "threshold {:016x}", m.threshold.to_bits());
    let _ = writeln!(s, "run {}", m.run);
    let _ = writeln!(s, "evaluations {}", m.evaluations);
    s.push_str("stats");
    push_f64_bits(
        &mut s,
        &[m.stats.med, m.stats.wmed, m.stats.wce, m.stats.error_rate, m.stats.mred],
    );
    let _ = writeln!(s, " {}", m.stats.max_abs_error);
    s.push_str("estimate");
    push_f64_bits(
        &mut s,
        &[
            m.estimate.area_um2,
            m.estimate.delay_ns,
            m.estimate.leakage_uw,
            m.estimate.dynamic_uw,
            m.estimate.clock_mhz,
        ],
    );
    s.push('\n');
    s.push_str(&m.chromosome.to_text());
    s
}

/// Parses an entry, validating it belongs to `key`. `None` on any defect.
fn entry_from_text(text: &str, key: CacheKey) -> Option<ScannedEntry> {
    let mut lines = text.lines();
    if lines.next()? != MAGIC {
        return None;
    }
    if lines.next()? != format!("key {}", key.hex()) {
        return None;
    }
    let op_line = field(lines.next()?, "op", 3)?;
    let op: Operator = op_line.values[0].parse().ok()?;
    let width: u32 = op_line.values[1].parse().ok()?;
    let signed = match op_line.values[2] {
        "signed" => true,
        "unsigned" => false,
        _ => return None,
    };
    // Accept any width some backend can evaluate (the symbolic range is
    // the widest): wide-width sweep results must survive a cache round
    // trip even when re-read under an enumeration backend.
    if !op.supports_width(width, EvalBackend::Symbolic) {
        return None;
    }
    let threshold = f64::from_bits(field(lines.next()?, "threshold", 1)?.parse_hex()?);
    let run = field(lines.next()?, "run", 1)?.parse_dec()?;
    let evaluations = field(lines.next()?, "evaluations", 1)?.parse_dec()?;

    let stats_line = field(lines.next()?, "stats", 6)?;
    let s = stats_line.f64s::<5>()?;
    let stats = ErrorStats {
        med: s[0],
        wmed: s[1],
        wce: s[2],
        error_rate: s[3],
        mred: s[4],
        max_abs_error: stats_line.values.last()?.parse().ok()?,
    };
    let est_line = field(lines.next()?, "estimate", 5)?;
    let e = est_line.f64s::<5>()?;
    let estimate = CircuitEstimate {
        area_um2: e[0],
        delay_ns: e[1],
        leakage_uw: e[2],
        dynamic_uw: e[3],
        clock_mhz: e[4],
    };

    // The remainder is exactly one `.cgp` chromosome; `from_text` rejects
    // truncation and trailing bytes itself.
    let rest: Vec<&str> = lines.collect();
    let chromosome = Chromosome::from_text(&rest.join("\n")).ok()?;
    if chromosome.num_inputs() != op.num_inputs(width) {
        return None; // the `op` line must agree with the genotype
    }
    let netlist = chromosome.decode_active();
    Some(ScannedEntry {
        key,
        op,
        width,
        signed,
        circuit: EvolvedCircuit {
            name: String::new(), // re-stamped by the caller for its grid
            chromosome,
            netlist,
            threshold,
            run,
            stats,
            estimate,
            evaluations,
        },
    })
}

/// One parsed `tag v1 v2 …` line with exactly `expected` values.
struct Fields<'a> {
    values: Vec<&'a str>,
}

impl Fields<'_> {
    fn parse_hex(&self) -> Option<u64> {
        u64::from_str_radix(self.values[0], 16).ok()
    }

    fn parse_dec<T: std::str::FromStr>(&self) -> Option<T> {
        self.values[0].parse().ok()
    }

    fn f64s<const N: usize>(&self) -> Option<[f64; N]> {
        let mut out = [0.0; N];
        for (o, v) in out.iter_mut().zip(&self.values) {
            *o = f64::from_bits(u64::from_str_radix(v, 16).ok()?);
        }
        Some(out)
    }
}

fn field<'a>(line: &'a str, tag: &str, expected: usize) -> Option<Fields<'a>> {
    let mut parts = line.split_whitespace();
    if parts.next()? != tag {
        return None;
    }
    let values: Vec<&str> = parts.collect();
    (values.len() == expected).then_some(Fields { values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_cgp::FunctionSet;
    use apx_rng::Xoshiro256;
    use proptest::prelude::*;

    /// Per-test unique scratch directory (parallel test binaries must not
    /// race on a shared fixed path — see the report-module regression).
    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("apx_cache_test_{}_{tag}", std::process::id()))
    }

    fn some_key(salt: u64) -> CacheKey {
        task_key(&FlowConfig::default(), &Pmf::uniform(8), 0.01, 0, salt)
    }

    /// A synthetic but structurally valid entry with every field driven
    /// from `seed`, including awkward float values (negative zero,
    /// subnormals, huge magnitudes). Multiplier-shaped (3-bit operands,
    /// `2w` inputs and outputs) so entries stored as `(Mul, 3)` satisfy
    /// the component contract the static lint enforces at load/ingest.
    fn synthetic_entry(seed: u64) -> EvolvedCircuit {
        let mut rng = Xoshiro256::from_seed(seed);
        let chromosome = Chromosome::random(6, 6, 20, &FunctionSet::extended(), &mut rng);
        let mut f = |i: usize| match i % 4 {
            0 => -0.0,
            1 => f64::from_bits(1), // smallest subnormal
            2 => rng.f64() * 1e300,
            _ => rng.f64(),
        };
        let netlist = chromosome.decode_active();
        EvolvedCircuit {
            name: format!("D_t{}_r{}", seed % 7, seed % 3),
            chromosome,
            netlist,
            threshold: f(3),
            run: (seed % 25) as usize,
            stats: ErrorStats {
                med: f(0),
                wmed: f(1),
                wce: f(2),
                error_rate: f(3),
                mred: f(2),
                max_abs_error: (seed as i64).rotate_left(17),
            },
            estimate: CircuitEstimate {
                area_um2: f(2),
                delay_ns: f(3),
                leakage_uw: f(0),
                dynamic_uw: f(1),
                clock_mhz: f(2),
            },
            evaluations: seed.rotate_left(29),
        }
    }

    fn assert_bit_identical(a: &EvolvedCircuit, b: &EvolvedCircuit) {
        assert_eq!(a.chromosome, b.chromosome);
        assert_eq!(a.run, b.run);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.threshold.to_bits(), b.threshold.to_bits());
        for (x, y) in [
            (a.stats.med, b.stats.med),
            (a.stats.wmed, b.stats.wmed),
            (a.stats.wce, b.stats.wce),
            (a.stats.error_rate, b.stats.error_rate),
            (a.stats.mred, b.stats.mred),
            (a.estimate.area_um2, b.estimate.area_um2),
            (a.estimate.delay_ns, b.estimate.delay_ns),
            (a.estimate.leakage_uw, b.estimate.leakage_uw),
            (a.estimate.dynamic_uw, b.estimate.dynamic_uw),
            (a.estimate.clock_mhz, b.estimate.clock_mhz),
        ] {
            // Stricter than PartialEq: -0.0 must stay -0.0.
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.stats.max_abs_error, b.stats.max_abs_error);
        assert_eq!(a.netlist.gate_count(), b.netlist.gate_count());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn store_load_round_trips_bit_for_bit(seed in 0u64..u64::MAX, salt in 0u64..u64::MAX) {
            let entry = synthetic_entry(seed);
            let key = some_key(salt);
            let signed = seed % 2 == 0;
            let dir = scratch("prop");
            let cache = SweepCache::new(&dir);
            cache.store(key, &entry, Operator::Mul, 3, signed).expect("store");
            let back = cache.load(key).expect("hit");
            assert_bit_identical(&entry, &back);
            // In-memory round trip agrees with the on-disk one, and the
            // `op` line round-trips the operand encoding.
            let back2 =
                entry_from_text(&entry_to_text(&entry, key, Operator::Mul, 3, signed), key)
                    .expect("parse");
            assert_bit_identical(&entry, &back2.circuit);
            assert_eq!(back2.signed, signed);
            assert_eq!(back2.width as usize, entry.netlist.num_inputs() / 2);
            assert_eq!(back2.key, key);
        }
    }

    #[test]
    fn missing_entry_is_a_miss() {
        let cache = SweepCache::new(scratch("missing"));
        assert!(cache.load(some_key(1)).is_none());
    }

    #[test]
    fn corrupt_and_truncated_entries_are_rejected_not_panicked() {
        let entry = synthetic_entry(42);
        let key = some_key(42);
        let text = entry_to_text(&entry, key, Operator::Mul, 3, false);
        assert!(entry_from_text(&text, key).is_some(), "sanity: intact entry loads");

        // Truncation at every line boundary (a killed non-atomic writer).
        let lines: Vec<&str> = text.lines().collect();
        for n in 0..lines.len() {
            let cut = lines[..n].join("\n");
            assert!(entry_from_text(&cut, key).is_none(), "truncated to {n} lines accepted");
        }
        // Truncation mid-line and single-byte corruption in the genes.
        assert!(entry_from_text(&text[..text.len() - 3], key).is_none());
        assert!(entry_from_text(&text.replace("genes", "genus"), key).is_none());
        // Trailing garbage / doubled entry.
        assert!(entry_from_text(&format!("{text}{text}"), key).is_none());
        assert!(entry_from_text(&format!("{text}trailing junk\n"), key).is_none());
        // Wrong magic or an entry stored under another key.
        assert!(entry_from_text(&text.replace(MAGIC, "apxsweep v1"), key).is_none());
        assert!(entry_from_text(&text.replace(MAGIC, "apxsweep v2"), key).is_none());
        assert!(entry_from_text(&text, some_key(43)).is_none());
        // A tampered `op` line (bad encoding word, zero width, width that
        // contradicts the genotype) is a defect, not a guess.
        for bad in [
            "op sideways 3 unsigned", // unknown operator token
            "op mul 3 sideways",      // bad encoding word
            "op mul 0 unsigned",      // zero width
            "op mul 4 unsigned",      // width contradicting the genotype
            "op 3 unsigned",          // v2 line shape (no operator)
        ] {
            assert!(
                entry_from_text(&text.replace("op mul 3 unsigned", bad), key).is_none(),
                "`{bad}` accepted"
            );
        }

        // End to end: a corrupt file on disk behaves as a miss.
        let dir = scratch("corrupt");
        let cache = SweepCache::new(&dir);
        let path = cache.store(key, &entry, Operator::Mul, 3, false).expect("store");
        std::fs::write(&path, &text.as_bytes()[..40]).unwrap();
        assert!(cache.load(key).is_none());
    }

    #[test]
    fn keys_separate_every_input_that_shapes_the_result() {
        let flow = FlowConfig::default();
        let pmf = Pmf::uniform(8);
        let base = task_key(&flow, &pmf, 0.01, 0, 7);
        assert_eq!(base, task_key(&flow.clone(), &pmf.clone(), 0.01, 0, 7), "deterministic");
        let variants = [
            task_key(&flow, &Pmf::half_normal(8, 48.0), 0.01, 0, 7),
            task_key(&flow, &pmf, 0.02, 0, 7),
            task_key(&flow, &pmf, 0.01, 1, 7),
            task_key(&flow, &pmf, 0.01, 0, 8),
            task_key(&FlowConfig { iterations: 3_000, ..flow.clone() }, &pmf, 0.01, 0, 7),
            task_key(&FlowConfig { lambda: 5, ..flow.clone() }, &pmf, 0.01, 0, 7),
            task_key(&FlowConfig { mutations: 6, ..flow.clone() }, &pmf, 0.01, 0, 7),
            task_key(&FlowConfig { cols_slack: 61, ..flow.clone() }, &pmf, 0.01, 0, 7),
            task_key(&FlowConfig { signed: true, ..flow.clone() }, &pmf, 0.01, 0, 7),
            task_key(&FlowConfig { operator: Operator::Add, ..flow.clone() }, &pmf, 0.01, 0, 7),
            task_key(&FlowConfig { activity_blocks: 47, ..flow.clone() }, &pmf, 0.01, 0, 7),
        ];
        let mut seen = std::collections::HashSet::from([base]);
        for v in variants {
            assert!(seen.insert(v), "key failed to separate a result-shaping input");
        }
        // Thresholds that differ only in bits invisible to `{:e}`-style
        // printing still separate (keys hash the IEEE bits).
        let tiny = f64::from_bits(0.01f64.to_bits() + 1);
        assert_ne!(task_key(&flow, &pmf, 0.01, 0, 7), task_key(&flow, &pmf, tiny, 0, 7));
    }

    #[test]
    fn store_is_atomic_in_place_and_leaves_no_temp_litter() {
        let dir = scratch("atomic");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SweepCache::new(&dir);
        let key = some_key(9);
        cache.store(key, &synthetic_entry(9), Operator::Mul, 3, false).expect("store");
        // Overwrite with different content: still one file, new content.
        cache.store(key, &synthetic_entry(10), Operator::Mul, 3, false).expect("overwrite");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec![format!("{}.sweep", key.hex())]);
        let back = cache.load(key).expect("hit");
        assert_bit_identical(&synthetic_entry(10), &back);
    }

    #[test]
    fn cache_key_hex_round_trips_and_rejects_other_shapes() {
        for salt in [0u64, 7, u64::MAX] {
            let key = some_key(salt);
            assert_eq!(CacheKey::from_hex(&key.hex()), Some(key));
        }
        for bad in ["", "xyz", "0123", &"f".repeat(31), &"f".repeat(33), &"g".repeat(32)] {
            assert_eq!(CacheKey::from_hex(bad), None, "`{bad}` accepted");
        }
    }

    #[test]
    fn scan_harvests_intact_entries_in_key_order_and_skips_damage() {
        let dir = scratch("scan");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SweepCache::new(&dir);
        assert!(cache.scan().is_empty(), "missing directory scans as empty");

        let mut stored: Vec<(CacheKey, EvolvedCircuit, bool)> =
            (0..5u64).map(|i| (some_key(i), synthetic_entry(100 + i), i % 2 == 0)).collect();
        for (key, entry, signed) in &stored {
            cache.store(*key, entry, Operator::Mul, 3, *signed).expect("store");
        }
        // Damage one entry, add a foreign file and a misnamed file: all
        // three must be skipped without failing the scan.
        let victim = dir.join(format!("{}.sweep", stored[0].0.hex()));
        std::fs::write(&victim, b"apxsweep v2\ngarbage\n").unwrap();
        std::fs::write(dir.join("README.txt"), b"not an entry").unwrap();
        std::fs::write(dir.join("nothex.sweep"), b"apxsweep v2\n").unwrap();

        let scanned = cache.scan();
        assert_eq!(scanned.len(), 4, "one damaged entry dropped");
        stored.remove(0);
        stored.sort_by_key(|(k, _, _)| (k.hi, k.lo));
        for (got, (key, entry, signed)) in scanned.iter().zip(&stored) {
            assert_eq!(got.key, *key);
            assert_eq!(got.op, Operator::Mul);
            assert_eq!(got.signed, *signed);
            assert_eq!(got.width as usize, entry.netlist.num_inputs() / 2);
            assert_bit_identical(&got.circuit, entry);
        }
        let hexes: Vec<String> = scanned.iter().map(|e| e.key.hex()).collect();
        let mut sorted = hexes.clone();
        sorted.sort();
        assert_eq!(hexes, sorted, "scan order is key-sorted, not filesystem order");

        // The maintenance view agrees with the scan.
        let stats = cache_dir_stats(&dir);
        assert_eq!(stats.files, 6, "five stored + one misnamed .sweep");
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.corrupt, 2);
        assert!(stats.total_bytes > 0);
        assert_eq!(stats.per_op.values().sum::<usize>(), 4);
        assert_eq!(
            stats.per_op.keys().map(|&(op, w, _)| (op, w)).collect::<Vec<_>>(),
            vec![(Operator::Mul, 3), (Operator::Mul, 3)]
        );
        assert_eq!(cache_dir_stats(&scratch("scan_missing")), CacheDirStats::default());
    }

    /// A synthetic entry whose stored `(wmed, area)` point is pinned —
    /// the stored-stats fallback front of the GC is then fully
    /// controllable.
    fn pinned_entry(seed: u64, wmed: f64, area: f64) -> EvolvedCircuit {
        let mut m = synthetic_entry(seed);
        m.stats.wmed = wmed;
        m.estimate.area_um2 = area;
        m
    }

    #[test]
    fn gc_on_missing_and_empty_dirs_is_a_noop() {
        let cfg = GcConfig::default();
        assert_eq!(gc_cache_dir(&scratch("gc_missing"), &cfg).unwrap(), GcReport::default());
        let dir = scratch("gc_empty");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(gc_cache_dir(&dir, &cfg).unwrap(), GcReport::default());
    }

    #[test]
    fn gc_clears_an_all_corrupt_dir_and_spares_foreign_files() {
        let dir = scratch("gc_corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(format!("{}.sweep", some_key(1).hex())), b"garbage\n").unwrap();
        std::fs::write(dir.join(format!("{}.sweep", some_key(2).hex())), b"apxsweep v2\n").unwrap();
        std::fs::write(dir.join("nothex.sweep"), b"also damaged").unwrap();
        std::fs::write(dir.join("README.txt"), b"not cache material").unwrap();

        let report = gc_cache_dir(&dir, &GcConfig::default()).unwrap();
        assert_eq!(report.entries_before, 0);
        assert_eq!(report.corrupt_removed, 3);
        assert_eq!(report.evicted, 0);
        assert!(report.bytes_freed > 0);
        let left: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(left, vec!["README.txt"], "foreign files are never touched");
    }

    #[test]
    fn gc_keeps_live_keys_and_stored_stats_front_drops_dominated() {
        let dir = scratch("gc_front");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SweepCache::new(&dir);
        // A (front), B (front), C dominated by A, D dominated but live.
        let population = [
            (some_key(10), pinned_entry(10, 0.10, 5.0)),
            (some_key(11), pinned_entry(11, 0.20, 4.0)),
            (some_key(12), pinned_entry(12, 0.15, 6.0)),
            (some_key(13), pinned_entry(13, 0.30, 9.0)),
        ];
        for (key, entry) in &population {
            cache.store(*key, entry, Operator::Mul, 3, false).unwrap();
        }
        let bytes_of = |key: CacheKey| std::fs::read(dir.join(format!("{}.sweep", key.hex()))).ok();
        let before: Vec<_> = population.iter().map(|(k, _)| bytes_of(*k)).collect();

        let cfg = GcConfig { keep: HashSet::from([population[3].0]), ..GcConfig::default() };
        let report = gc_cache_dir(&dir, &cfg).unwrap();
        assert_eq!(report.entries_before, 4);
        assert_eq!(report.kept_live, 1);
        assert_eq!(report.kept_pareto, 2);
        assert_eq!(report.kept(), 3);
        assert_eq!(report.evicted, 1);
        assert!(report.bytes_freed > 0);

        // Survivors are bit-identical, the dominated entry is gone.
        for (i, (key, _)) in population.iter().enumerate() {
            let now = bytes_of(*key);
            if i == 2 {
                assert_eq!(now, None, "dominated entry must be evicted");
            } else {
                assert_eq!(now, before[i], "survivor rewritten by GC");
            }
        }
        // Idempotent: a second pass finds nothing left to do.
        let again = gc_cache_dir(&dir, &cfg).unwrap();
        assert_eq!(again.evicted, 0);
        assert_eq!(again.entries_before, 3);
        assert_eq!(again.kept(), 3);
    }

    #[test]
    fn gc_collapses_equivalence_classes_among_pareto_survivors() {
        let dir = scratch("gc_collapse");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SweepCache::new(&dir);
        let proto = synthetic_entry(42);
        let pin = |wmed: f64, area: f64| {
            let mut e = proto.clone();
            e.stats.wmed = wmed;
            e.estimate.area_um2 = area;
            e
        };
        // k1/k2 share one netlist (one function; both points are stored-
        // front non-dominated), k3 is a different function, k4 repeats
        // the shared function but is *live*.
        let (k1, k2, k3, k4) = (some_key(101), some_key(102), some_key(103), some_key(104));
        cache.store(k1, &pin(0.10, 5.0), Operator::Mul, 3, false).unwrap();
        cache.store(k2, &pin(0.05, 6.0), Operator::Mul, 3, false).unwrap();
        cache.store(k3, &pinned_entry(43, 0.01, 7.0), Operator::Mul, 3, false).unwrap();
        cache.store(k4, &pin(0.90, 9.0), Operator::Mul, 3, false).unwrap();

        let cfg = GcConfig { keep: HashSet::from([k4]), ..GcConfig::default() };
        let report = gc_cache_dir(&dir, &cfg).unwrap();
        assert_eq!(report.entries_before, 4);
        assert_eq!(report.kept_live, 1);
        assert_eq!(report.collapsed, 1, "one of the two equivalent front entries goes");
        assert_eq!(report.kept_pareto, 2);
        assert_eq!(report.evicted, 1);
        let exists = |k: CacheKey| dir.join(format!("{}.sweep", k.hex())).exists();
        assert!(exists(k1), "the smaller-area class representative survives");
        assert!(!exists(k2), "its equivalent duplicate is collapsed");
        assert!(exists(k3), "a distinct function is untouched");
        assert!(exists(k4), "live keys are never collapsed, even as duplicates");

        // The escape hatch keeps both duplicates on the front.
        cache.store(k2, &pin(0.05, 6.0), Operator::Mul, 3, false).unwrap();
        let off =
            GcConfig { keep: HashSet::from([k4]), collapse_equiv: false, ..GcConfig::default() };
        let report = gc_cache_dir(&dir, &off).unwrap();
        assert_eq!(report.collapsed, 0);
        assert_eq!(report.kept_pareto, 3);
    }

    #[test]
    fn gc_rescored_front_survives_under_a_distribution() {
        // With a distribution supplied the front comes from *re-scoring*
        // (stored stats are ignored): entries whose stored stats look
        // dominated but whose netlists are genuinely non-dominated under
        // the PMF must survive, and vice versa.
        let dir = scratch("gc_rescore");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SweepCache::new(&dir);
        let keys: Vec<CacheKey> = (0..6u64).map(|i| some_key(20 + i)).collect();
        for (i, key) in keys.iter().enumerate() {
            // Stored stats say "everyone is dominated by entry 0"; the
            // rescored truth depends only on the actual circuits — which
            // must be multiplier-shaped (2w outputs) to be evaluable.
            let mut entry = pinned_entry(20 + i as u64, 0.5 + i as f64, 100.0);
            let mut rng = Xoshiro256::from_seed(9000 + i as u64);
            entry.chromosome = Chromosome::random(6, 6, 20, &FunctionSet::extended(), &mut rng);
            entry.netlist = entry.chromosome.decode_active();
            cache.store(*key, &entry, Operator::Mul, 3, false).unwrap();
        }
        let pmf = Pmf::uniform(3);
        let cfg = GcConfig { distributions: vec![pmf.clone()], ..GcConfig::default() };
        let report = gc_cache_dir(&dir, &cfg).unwrap();
        assert_eq!(report.entries_before, 6);
        assert_eq!(report.kept_live, 0);
        assert!(report.kept_pareto >= 1, "a rescored front is never empty");
        assert_eq!(report.kept_pareto + report.evicted, 6);

        // The survivors are exactly a non-dominated set under the PMF:
        // re-score what's left and check nobody dominates anybody.
        let mut lib = ComponentLibrary::new();
        assert_eq!(lib.scan_cache(&dir), report.kept_pareto);
        let evaluator = CircuitEvaluator::new(3, false, &pmf).unwrap();
        let rescored = lib.rescore(&evaluator, &TechLibrary::nangate45(), 1);
        assert_eq!(rescored.pareto().len(), rescored.candidates().len());
    }

    #[test]
    fn tmp_litter_is_counted_and_collected_when_stale() {
        let dir = scratch("gc_tmp");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SweepCache::new(&dir);
        let key = some_key(77);
        cache.store(key, &synthetic_entry(77), Operator::Mul, 3, false).unwrap();
        // Fabricate the orphan a writer killed between write and rename
        // leaves behind.
        let orphan = dir.join(format!(".{}.tmp.424242", some_key(78).hex()));
        std::fs::write(&orphan, b"half-written entry").unwrap();

        let stats = cache_dir_stats(&dir);
        assert_eq!(stats.tmp_litter, 1);
        assert_eq!(stats.files, 1, "litter is not a .sweep file");
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.corrupt, 0, "litter is litter, not corruption");
        assert_eq!(cache.scan().len(), 1, "scans never see litter");

        // Young litter is protected (it may belong to a live writer)...
        let grace = GcConfig { tmp_ttl: Duration::from_secs(3600), ..GcConfig::default() };
        let kept = gc_cache_dir(&dir, &grace).unwrap();
        assert_eq!(kept.tmp_removed, 0);
        assert!(orphan.exists());
        // ...stale litter is deleted; the intact entry (its own front)
        // survives untouched.
        let now = GcConfig { tmp_ttl: Duration::ZERO, ..GcConfig::default() };
        let swept = gc_cache_dir(&dir, &now).unwrap();
        assert_eq!(swept.tmp_removed, 1);
        assert_eq!(swept.evicted, 0);
        assert_eq!(swept.kept(), 1);
        assert!(!orphan.exists());
        assert!(cache.load(key).is_some());
        assert_eq!(cache_dir_stats(&dir).tmp_litter, 0);
    }
}
