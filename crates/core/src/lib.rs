//! The paper's primary contribution: data-distribution-driven automated
//! circuit approximation.
//!
//! Everything below composes the substrate crates into the method of
//! Vasicek, Mrazek & Sekanina (DATE 2019):
//!
//! * [`Eq1Fitness`] — the fitness function of Eq. 1: minimize circuit
//!   area subject to `WMED_D ≤ E_i`, with early-abort WMED evaluation;
//! * [`evolve_circuits`] / [`FlowConfig`] — the full design flow:
//!   seed CGP with the configured operator's exact design (multiplier,
//!   adder or MAC — [`apx_arith::Operator`]), sweep the 14 target error
//!   levels, repeat runs, and return every evolved circuit with its error
//!   statistics and physical estimate (Fig. 3 / Fig. 6 data);
//! * [`run_sweep`] / [`SweepConfig`] — the Pareto sweep driver: the full
//!   `(distribution × threshold × run)` grid on one persistent
//!   [`apx_pool`] worker pool, with each WMED evaluator built once per
//!   distribution and shared across all of its tasks;
//! * [`cache`] — content-addressed persistence of completed sweep tasks:
//!   every finished `(distribution, threshold, run)` task is checkpointed
//!   under a digest of exactly what was computed, so re-runs, interrupted
//!   overnight sweeps and multi-process [`Shard`] splits reuse evolved
//!   circuits instead of re-evolving them;
//! * [`orchestrate`] — the local multi-process supervisor over that
//!   cache: spawn `n` shard processes (`APX_SHARD=i/n` over one
//!   `APX_CACHE_DIR`), poll the shared directory for progress, relaunch
//!   dead shards on their (mostly cached) remainder, and afterwards
//!   garbage-collect with [`cache::gc_cache_dir`] — live-grid keys plus
//!   the per-encoding `(WMED, area)` Pareto set survive, dominated
//!   history and stale temp litter are dropped;
//! * [`library`] — the autoAx-style component library on top of that
//!   cache: harvested evolutions and conventional [`apx_approxlib`]
//!   designs unified as [`library::LibraryEntry`] candidates, indexed by
//!   `(width, signedness)`, re-scored under *new* distributions (one
//!   evaluator pass, no evolution) and consulted by the sweep via
//!   [`LibraryConfig`] — direct hits or CGP population seeding;
//! * [`pareto_indices`] — non-dominated filtering for the trade-off plots;
//! * [`cross_wmed`] / [`error_heatmap`] — cross-distribution evaluation
//!   (the off-diagonal panels of Fig. 3 and the heat maps of Fig. 4);
//! * [`mac_metrics`] — MAC-unit integration and relative PDP/power/area
//!   reporting (Table I columns);
//! * [`nn_flow`] — case-study-2 orchestration: train → quantize → measure
//!   the weight distribution → evaluate candidate multipliers with and
//!   without fine-tuning (Fig. 7, Table I);
//! * [`report`] — aligned text tables and CSV output for the bench
//!   binaries that regenerate every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod error;
mod evaluate;
mod fitness;
mod flow;
pub mod library;
mod mac_report;
pub mod nn_flow;
pub mod orchestrate;
mod pareto;
pub mod report;
mod sweep;

pub use error::CoreError;
pub use evaluate::{cross_wmed, error_heatmap};
pub use fitness::Eq1Fitness;
pub use flow::{
    default_thresholds, evolve_circuits, table1_thresholds, EvolvedCircuit, FlowConfig, FlowResult,
};
pub use mac_report::{mac_metrics, MacMetrics};
pub use orchestrate::{
    orchestrate, OrchestratorConfig, OrchestratorEvent, OrchestratorReport, ShardOutcome,
};
pub use pareto::pareto_indices;
pub use sweep::{
    grid_keys, run_sweep, LibraryConfig, Shard, SweepConfig, SweepDist, SweepEntry, SweepResult,
    SweepStats,
};
