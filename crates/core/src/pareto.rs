//! Non-dominated (Pareto) filtering for 2-D minimization.

/// Indices of the non-dominated points of `points` (both coordinates
/// minimized), sorted by the first coordinate.
///
/// A point dominates another when it is no worse in both coordinates and
/// strictly better in at least one. Duplicate points survive together.
#[must_use]
pub fn pareto_indices(points: &[(f64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a].0.total_cmp(&points[b].0).then(points[a].1.total_cmp(&points[b].1))
    });
    let mut front: Vec<usize> = Vec::new();
    let mut best_y = f64::INFINITY;
    for &i in &order {
        let (_, y) = points[i];
        if y < best_y {
            front.push(i);
            best_y = y;
        } else if y == best_y {
            // Keep exact duplicates of the current frontier point.
            if let Some(&last) = front.last() {
                if points[last] == points[i] {
                    front.push(i);
                }
            }
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dominates(p: (f64, f64), q: (f64, f64)) -> bool {
        p.0 <= q.0 && p.1 <= q.1 && (p.0 < q.0 || p.1 < q.1)
    }

    #[test]
    fn simple_front() {
        let pts = vec![(1.0, 5.0), (2.0, 3.0), (3.0, 4.0), (4.0, 1.0)];
        let front = pareto_indices(&pts);
        assert_eq!(front, vec![0, 1, 3]);
    }

    #[test]
    fn dominated_points_are_dropped() {
        let pts = vec![(1.0, 1.0), (2.0, 2.0), (0.5, 3.0)];
        let front = pareto_indices(&pts);
        assert!(front.contains(&0));
        assert!(!front.contains(&1));
        assert!(front.contains(&2));
    }

    #[test]
    fn empty_and_single() {
        assert!(pareto_indices(&[]).is_empty());
        assert_eq!(pareto_indices(&[(1.0, 1.0)]), vec![0]);
    }

    #[test]
    fn duplicates_survive_together() {
        let pts = vec![(1.0, 1.0), (1.0, 1.0), (2.0, 0.5)];
        let front = pareto_indices(&pts);
        assert!(front.contains(&0) && front.contains(&1) && front.contains(&2));
    }

    proptest! {
        #[test]
        fn prop_front_members_are_mutually_nondominated(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 0..40)
        ) {
            let front = pareto_indices(&pts);
            for &i in &front {
                for &j in &front {
                    if i != j {
                        prop_assert!(
                            !dominates(pts[i], pts[j]) || pts[i] == pts[j],
                            "{i} dominates {j}"
                        );
                    }
                }
            }
            // Every non-front point is dominated by some front point.
            for k in 0..pts.len() {
                if !front.contains(&k) {
                    prop_assert!(
                        front.iter().any(|&i| dominates(pts[i], pts[k])),
                        "{k} undominated but excluded"
                    );
                }
            }
        }
    }
}
