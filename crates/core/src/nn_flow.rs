//! Case-study-2 orchestration: approximate MAC units for NN classifiers.
//!
//! Mirrors the paper's §V pipeline end to end: train a float network on a
//! digit dataset, quantize it to 8-bit dynamic fixed point, measure the
//! quantized weight distribution (the `D` of WMED, Fig. 6 top), then score
//! candidate approximate multipliers by classification accuracy before and
//! after fine-tuning (Table I, Fig. 7).

use apx_arith::OpTable;
use apx_datasets::{mnist_like, svhn_like, Dataset};
use apx_dist::Pmf;
use apx_nn::{finetune, train, weight_pmf, FinetuneConfig, Network, QuantizedNetwork, TrainConfig};
use apx_rng::Xoshiro256;

/// Which reference classifier to prepare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// MLP (784-`hidden`-10) on the MNIST-like set.
    Mlp {
        /// Hidden-layer width (the paper uses 300).
        hidden: usize,
    },
    /// LeNet-5 variant on the SVHN-like 32×32 set.
    LeNet,
}

/// Scale parameters of a case study (sized down from the paper's full
/// datasets so experiments finish in minutes; everything is a knob).
#[derive(Debug, Clone, PartialEq)]
pub struct CaseConfig {
    /// Classifier architecture.
    pub kind: CaseKind,
    /// Training samples.
    pub train_n: usize,
    /// Held-out test samples.
    pub test_n: usize,
    /// Calibration samples for quantization (taken from the train set).
    pub calib_n: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Master seed.
    pub seed: u64,
}

impl CaseConfig {
    /// The MNIST-like MLP case at a laptop-friendly scale.
    #[must_use]
    pub fn mlp_default() -> Self {
        CaseConfig {
            kind: CaseKind::Mlp { hidden: 64 },
            train_n: 1500,
            test_n: 400,
            calib_n: 64,
            epochs: 15,
            lr: 0.03,
            seed: 1,
        }
    }

    /// The SVHN-like LeNet case at a laptop-friendly scale.
    #[must_use]
    pub fn lenet_default() -> Self {
        CaseConfig {
            kind: CaseKind::LeNet,
            train_n: 1200,
            test_n: 300,
            calib_n: 48,
            epochs: 10,
            lr: 0.03,
            seed: 2,
        }
    }
}

/// A fully prepared case study: trained float network, its quantized twin,
/// the measured weight distribution and the datasets.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Trained float network.
    pub net: Network,
    /// Quantized (8-bit) twin.
    pub qnet: QuantizedNetwork,
    /// Distribution of quantized weights — WMED's `D` (Fig. 6 top).
    pub weight_pmf: Pmf,
    /// Training set.
    pub train_set: Dataset,
    /// Held-out test set.
    pub test_set: Dataset,
    /// Calibration subset.
    pub calib: Dataset,
    /// Float accuracy on the test set.
    pub float_accuracy: f64,
    /// Quantized accuracy with the exact 8-bit multiplier (the paper's
    /// 0 %-reference of Table I / Fig. 7).
    pub quantized_accuracy: f64,
}

/// Trains and quantizes a reference classifier.
///
/// # Panics
///
/// Panics if the configuration is degenerate (`train_n == 0`,
/// `calib_n == 0` or `calib_n > train_n`).
#[must_use]
pub fn prepare_case(cfg: &CaseConfig) -> CaseStudy {
    assert!(cfg.train_n > 0 && cfg.test_n > 0, "dataset sizes must be positive");
    assert!(
        cfg.calib_n > 0 && cfg.calib_n <= cfg.train_n,
        "calibration subset must fit in the training set"
    );
    let mut rng = Xoshiro256::from_seed(cfg.seed);
    let (mut net, train_set, test_set) = match cfg.kind {
        CaseKind::Mlp { hidden } => {
            let data = mnist_like(cfg.train_n + cfg.test_n, cfg.seed);
            let (tr, te) = data.split(cfg.train_n);
            (Network::mlp(784, hidden, 10, &mut rng), tr, te)
        }
        CaseKind::LeNet => {
            let data = svhn_like(cfg.train_n + cfg.test_n, cfg.seed);
            let (tr, te) = data.split(cfg.train_n);
            (Network::lenet5(&mut rng), tr, te)
        }
    };
    train(
        &mut net,
        &train_set,
        &TrainConfig { epochs: cfg.epochs, lr: cfg.lr, seed: cfg.seed, ..Default::default() },
    );
    let (calib, _) = train_set.split(cfg.calib_n);
    let qnet = QuantizedNetwork::quantize(&net, &calib);
    let weight_pmf = weight_pmf(&qnet);
    let float_accuracy = net.accuracy(&test_set);
    let exact = OpTable::exact_mul(8, true);
    let quantized_accuracy = qnet.accuracy_with(&test_set, &exact);
    CaseStudy {
        net,
        qnet,
        weight_pmf,
        train_set,
        test_set,
        calib,
        float_accuracy,
        quantized_accuracy,
    }
}

/// Accuracy of one approximate multiplier inside the classifier, before
/// and after fine-tuning (one row of Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiplierAccuracy {
    /// Accuracy with the approximate multiplier, no retraining.
    pub initial: f64,
    /// Accuracy after STE fine-tuning with the multiplier in the loop.
    pub finetuned: f64,
    /// Delta vs. the exact-multiplier quantized network (initial), in
    /// accuracy fraction (negative = degradation, Table I convention).
    pub initial_delta: f64,
    /// Delta vs. the exact-multiplier quantized network (fine-tuned).
    pub finetuned_delta: f64,
}

/// Evaluates `table` inside the case study's classifier; when
/// `finetune_iterations > 0`, also retrains a copy of the float network
/// with the multiplier in the loop (the paper uses 10 iterations).
#[must_use]
pub fn evaluate_multiplier(
    case: &CaseStudy,
    table: &OpTable,
    finetune_iterations: usize,
) -> MultiplierAccuracy {
    let initial = case.qnet.accuracy_with(&case.test_set, table);
    let finetuned = if finetune_iterations == 0 {
        initial
    } else {
        let mut tuned_net = case.net.clone();
        let tuned_q = finetune(
            &mut tuned_net,
            &case.calib,
            table,
            &case.train_set,
            &FinetuneConfig { iterations: finetune_iterations, lr: 0.01, ..Default::default() },
        );
        tuned_q.accuracy_with(&case.test_set, table)
    };
    MultiplierAccuracy {
        initial,
        finetuned,
        initial_delta: initial - case.quantized_accuracy,
        finetuned_delta: finetuned - case.quantized_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_arith::baugh_wooley_broken;

    fn tiny_mlp_case() -> CaseStudy {
        prepare_case(&CaseConfig {
            kind: CaseKind::Mlp { hidden: 24 },
            train_n: 300,
            test_n: 100,
            calib_n: 32,
            epochs: 12,
            lr: 0.03,
            seed: 5,
        })
    }

    #[test]
    fn prepared_case_learns_and_quantizes() {
        let case = tiny_mlp_case();
        assert!(case.float_accuracy > 0.7, "float acc {}", case.float_accuracy);
        assert!(
            case.quantized_accuracy > case.float_accuracy - 0.08,
            "quantization drop too large: {} vs {}",
            case.quantized_accuracy,
            case.float_accuracy
        );
        // NN weight distributions concentrate around zero (Fig. 6 top).
        assert!(case.weight_pmf.prob_of(0) > case.weight_pmf.prob_of(80));
    }

    #[test]
    fn exact_multiplier_reproduces_reference() {
        let case = tiny_mlp_case();
        let exact = OpTable::exact_mul(8, true);
        let acc = evaluate_multiplier(&case, &exact, 0);
        assert_eq!(acc.initial, case.quantized_accuracy);
        assert_eq!(acc.initial_delta, 0.0);
        assert_eq!(acc.finetuned, acc.initial, "no finetuning requested");
    }

    #[test]
    fn zero_guard_helps_nn_accuracy() {
        // The paper's observation [6]: exact-by-zero matters because most
        // weights are zero-ish.
        let case = tiny_mlp_case();
        let base = OpTable::from_netlist(&baugh_wooley_broken(8, 8, 8), 8, true).unwrap();
        let guarded = base.with_zero_guard();
        let acc_base = evaluate_multiplier(&case, &base, 0);
        let acc_guarded = evaluate_multiplier(&case, &guarded, 0);
        assert!(
            acc_guarded.initial >= acc_base.initial,
            "guarded {} vs base {}",
            acc_guarded.initial,
            acc_base.initial
        );
    }

    #[test]
    #[should_panic(expected = "calibration subset")]
    fn bad_calibration_size_panics() {
        let _ = prepare_case(&CaseConfig { calib_n: 0, ..CaseConfig::mlp_default() });
    }
}
