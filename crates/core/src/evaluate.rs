//! Cross-distribution evaluation (Fig. 3's off-diagonal panels, Fig. 4).

use apx_dist::Pmf;
use apx_gates::Netlist;
use apx_metrics::{CircuitEvaluator, ErrorMatrix, EvaluatorError};

/// Evaluates one multiplier under several distributions: returns the WMED
/// under each `pmf`, in order. This is how the paper shows that a
/// circuit evolved for `D1` is *not* competitive under `WMED_Du` and
/// vice versa. (Multiplier encoding; other operators cross-evaluate via
/// their sweep's shared [`CircuitEvaluator::for_operator`] evaluators, as
/// the `fig_adders` bin does.)
///
/// # Errors
///
/// Propagates [`EvaluatorError`] for PMF/width mismatches.
pub fn cross_wmed(
    netlist: &Netlist,
    width: u32,
    signed: bool,
    pmfs: &[Pmf],
) -> Result<Vec<f64>, EvaluatorError> {
    pmfs.iter().map(|pmf| Ok(CircuitEvaluator::new(width, signed, pmf)?.wmed(netlist))).collect()
}

/// Per-input-pair error heat map of a multiplier (the data behind Fig. 4).
///
/// # Errors
///
/// Propagates [`EvaluatorError`] on unsupported widths.
pub fn error_heatmap(
    netlist: &Netlist,
    width: u32,
    signed: bool,
) -> Result<ErrorMatrix, EvaluatorError> {
    let eval = CircuitEvaluator::new(width, signed, &Pmf::uniform(width))?;
    Ok(eval.error_matrix(netlist))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_arith::{broken_array_multiplier, truncated_multiplier};

    #[test]
    fn cross_wmed_orders_match_table_construction() {
        let nl = truncated_multiplier(6, 6);
        let pmfs = vec![Pmf::uniform(6), Pmf::half_normal(6, 8.0), Pmf::normal(6, 32.0, 8.0)];
        let wmeds = cross_wmed(&nl, 6, false, &pmfs).unwrap();
        assert_eq!(wmeds.len(), 3);
        // Truncation errors grow with operand magnitude, so the
        // low-concentrated half-normal must score best.
        assert!(wmeds[1] < wmeds[0], "half-normal {} vs uniform {}", wmeds[1], wmeds[0]);
        assert!(wmeds[1] < wmeds[2]);
    }

    #[test]
    fn heatmap_reflects_break_structure() {
        let nl = broken_array_multiplier(6, 4, 0); // drops high b rows
        let m = error_heatmap(&nl, 6, false).unwrap();
        // Rows are x (operand A): BAM's hbl drops b-rows, so errors grow
        // with the *y* operand. Column means should grow with y.
        let low_y: f64 = (0..16).map(|y| (0..64).map(|x| m.get(x, y)).sum::<f64>()).sum();
        let high_y: f64 = (48..64).map(|y| (0..64).map(|x| m.get(x, y)).sum::<f64>()).sum();
        assert!(high_y > low_y);
    }
}
