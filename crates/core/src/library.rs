//! Component-library mode: autoAx-style reuse of already-built
//! circuits across design-space explorations.
//!
//! A paper-scale sweep re-runs CGP from scratch for every `(distribution,
//! threshold)` point, yet the expensive artifact — an approximate
//! multiplier, adder or MAC — does not care which distribution it was
//! evolved under:
//! its WMED under a *new* [`Pmf`] is one exhaustive [`CircuitEvaluator`]
//! pass, no evolution at all (this is exactly the cheap re-scoring that
//! makes autoAx-style library reuse work; Mrazek et al., DAC'19). This
//! module turns the per-task [`crate::cache`] into such a reusable
//! library:
//!
//! * [`ComponentLibrary`] scans a cache directory
//!   ([`SweepCache::scan`]), deduplicates harvested chromosomes by a
//!   structural digest of their active netlist, ingests conventionally
//!   designed circuits — the [`apx_approxlib`] multipliers and the
//!   approximate adders of [`apx_arith::adders_approx`] — through the
//!   same unified [`LibraryEntry`] form, and indexes everything by
//!   `(operator, width, signedness)`;
//! * [`ComponentLibrary::rescore`] re-prices every matching candidate
//!   under the current sweep's distribution — full [`ErrorStats`] via
//!   the batched evaluator ([`CircuitEvaluator::stats_batch`], fanned out
//!   on `apx_pool`) plus the technology-library area — yielding a
//!   [`RescoredLibrary`]: a deterministic ranking with a per-
//!   distribution Pareto front of `(WMED, area)` that keeps each
//!   candidate's [`Provenance`];
//! * [`run_sweep`](crate::run_sweep) consults the result (see
//!   [`LibraryConfig`](crate::LibraryConfig)): a candidate already
//!   meeting a task's threshold is taken directly (`library_hits`),
//!   otherwise the best candidates seed the CGP population
//!   ([`apx_cgp::evolve_seeded`], `seeded_evolutions`) instead of every
//!   run starting from the operator's exact seed circuit.
//!
//! Determinism is preserved end to end: scans are key-sorted (never
//! filesystem order), re-scoring is bit-identical to the sweep's own
//! statistics pass for any thread count, and all rankings are total
//! orders (ties broken by error bits, then name). An empty library is a
//! guaranteed no-op: the sweep behaves bit-for-bit as if library mode
//! were off.

use crate::cache::{CacheKey, ScannedEntry, SweepCache};
use crate::flow::EvolvedCircuit;
use crate::pareto_indices;
use apx_approxlib::{Family, MultiplierLibrary};
use apx_arith::{lower_or_adder, ripple_carry_adder, truncated_adder, Operator};
use apx_cgp::{Chromosome, FunctionSet};
use apx_dist::{fnv1a64, FNV1A64_OFFSET};
use apx_gates::Netlist;
use apx_metrics::{CircuitEvaluator, ErrorStats};
use apx_techlib::{area_of, TechLibrary};
use apx_verify::{functional_digest, has_errors, lint_component, wmed_bounds_weighted, Diagnostic};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// Which exploration produced a library candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Harvested from a sweep-cache entry: a CGP run checkpointed under
    /// `source_key` by some earlier (possibly differently-distributed)
    /// exploration.
    Evolved {
        /// The content-addressed key the entry was stored under.
        source_key: CacheKey,
    },
    /// A conventionally designed circuit: an [`apx_approxlib`]
    /// multiplier (truncated, broken-array, zero-guarded, … — the
    /// paper's §IV baselines) or an [`apx_arith::adders_approx`] adder
    /// (lower-OR, truncated).
    Conventional {
        /// The approxlib construction family.
        family: Family,
    },
}

/// One candidate of a [`ComponentLibrary`] — the unified form behind
/// which evolved cache entries and conventional [`apx_approxlib`]
/// designs become indistinguishable to the sweep.
#[derive(Debug, Clone)]
pub struct LibraryEntry {
    /// Stable display name (`evo_<key prefix>` or the approxlib name).
    pub name: String,
    /// The genotype: evolved entries keep their stored chromosome;
    /// conventional netlists are encoded onto an exact-fit CGP grid so
    /// they can seed an evolution like any other candidate.
    pub chromosome: Chromosome,
    /// The active-cone phenotype (`chromosome.decode_active()`), the
    /// object every re-scoring pass evaluates.
    pub netlist: Netlist,
    /// The arithmetic operator the candidate implements.
    pub op: Operator,
    /// Operand width in bits.
    pub width: u32,
    /// Two's-complement operand encoding.
    pub signed: bool,
    /// Structural digest of the compacted netlist (dedup identity).
    pub digest: u128,
    /// Where the candidate came from.
    pub provenance: Provenance,
}

/// 128-bit structural digest of a netlist's *compacted* form: dead nodes
/// do not change identity, so a chromosome re-encoded on a wider grid
/// deduplicates against its original.
#[must_use]
pub fn netlist_digest(netlist: &Netlist) -> u128 {
    let compact = netlist.compact();
    let mut canonical = String::new();
    let _ = write!(canonical, "nl {} {}", compact.num_inputs(), compact.num_outputs());
    for node in compact.nodes() {
        let _ = write!(canonical, " {}:{}:{}", node.kind.name(), node.a.0, node.b.0);
    }
    for out in compact.outputs() {
        let _ = write!(canonical, " o{}", out.0);
    }
    let hi = fnv1a64(canonical.as_bytes(), FNV1A64_OFFSET);
    let lo = fnv1a64(canonical.as_bytes(), FNV1A64_OFFSET ^ 0x9E37_79B9_7F4A_7C15);
    (u128::from(hi) << 64) | u128::from(lo)
}

/// A deduplicated, `(operator, width, signedness)`-indexed collection of
/// candidate circuits harvested from sweep caches and conventional
/// libraries.
#[derive(Debug, Clone, Default)]
pub struct ComponentLibrary {
    entries: Vec<LibraryEntry>,
    by_digest: HashMap<u128, usize>,
    /// Full stored task results by cache key, for exact replay: when a
    /// sweep task's own key shows up here, the stored entry *is* what
    /// that task would compute, bit for bit.
    exact: HashMap<CacheKey, (Operator, u32, bool, EvolvedCircuit)>,
    /// Scanned entries the `apx_verify` ingest gate refused, with the
    /// diagnoses — named findings instead of silently orphaned entries.
    rejected: Vec<(CacheKey, Vec<Diagnostic>)>,
    /// Running total of entries removed by
    /// [`dedup_semantic`](Self::dedup_semantic).
    semantic_dups: usize,
}

impl ComponentLibrary {
    /// An empty library.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of deduplicated candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library holds no candidates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All candidates, in deterministic ingestion order.
    pub fn entries(&self) -> impl Iterator<Item = &LibraryEntry> {
        self.entries.iter()
    }

    /// The candidates matching one component class, in deterministic
    /// ingestion order — the `(operator, width, signedness)` index a
    /// sweep draws from.
    pub fn candidates(
        &self,
        op: Operator,
        width: u32,
        signed: bool,
    ) -> impl Iterator<Item = &LibraryEntry> {
        self.entries.iter().filter(move |e| e.op == op && e.width == width && e.signed == signed)
    }

    /// Scanned entries the static ingest gate refused, in scan order,
    /// each with the full list of named diagnostics that disqualified it.
    #[must_use]
    pub fn rejected(&self) -> &[(CacheKey, Vec<Diagnostic>)] {
        &self.rejected
    }

    /// The stored task result for `key`, when this library harvested the
    /// exact entry an `(op, width, signed)` sweep task would compute.
    /// Replaying it is bit-identical to a cache hit (the key is
    /// content-addressed over everything that shapes the result).
    #[must_use]
    pub fn exact_match(
        &self,
        key: CacheKey,
        op: Operator,
        width: u32,
        signed: bool,
    ) -> Option<&EvolvedCircuit> {
        self.exact
            .get(&key)
            .filter(|(o, w, s, _)| *o == op && *w == width && *s == signed)
            .map(|(_, _, _, m)| m)
    }

    /// Harvests every intact entry of the sweep cache at `dir`
    /// (deduplicating against what is already present) and returns how
    /// many new candidates were added. A missing directory adds nothing.
    pub fn scan_cache(&mut self, dir: impl AsRef<Path>) -> usize {
        let mut added = 0;
        for scanned in SweepCache::new(dir.as_ref()).scan() {
            if self.ingest_scanned(scanned) {
                added += 1;
            }
        }
        added
    }

    /// Ingests one already-[`scan`](SweepCache::scan)ned cache entry —
    /// the building block of [`scan_cache`](Self::scan_cache), exposed so
    /// callers that have a scan in hand (the garbage collector of
    /// [`crate::cache`], a future persisted-front loader) can build a
    /// library without re-reading the directory. Returns whether the
    /// entry became a *new* candidate (structural duplicates only extend
    /// the exact-replay index).
    ///
    /// Ingestion order matters for provenance: when several keys store
    /// structurally identical netlists, the first ingested key becomes
    /// the candidate's `source_key`, exactly as in a (key-sorted)
    /// directory scan.
    ///
    /// Every entry passes the `apx_verify` static gate first: a netlist
    /// violating its structural or declared-component contract is
    /// recorded under [`rejected`](Self::rejected) with its named
    /// diagnostics and ingested as neither candidate nor exact replay.
    pub fn ingest_scanned(&mut self, scanned: ScannedEntry) -> bool {
        let diags = lint_component(&scanned.circuit.netlist, scanned.op, scanned.width);
        if has_errors(&diags) {
            self.rejected.push((scanned.key, diags));
            return false;
        }
        let name = format!("evo_{}", &scanned.key.hex()[..12]);
        let entry = LibraryEntry {
            name,
            digest: netlist_digest(&scanned.circuit.netlist),
            chromosome: scanned.circuit.chromosome.clone(),
            netlist: scanned.circuit.netlist.clone(),
            op: scanned.op,
            width: scanned.width,
            signed: scanned.signed,
            provenance: Provenance::Evolved { source_key: scanned.key },
        };
        let added = self.insert(entry);
        self.exact
            .insert(scanned.key, (scanned.op, scanned.width, scanned.signed, scanned.circuit));
        added
    }

    /// Ingests every entry of a conventional [`MultiplierLibrary`] —
    /// truncated, broken-array and zero-guarded designs become seed
    /// candidates exactly like cached evolutions. Returns how many new
    /// candidates were added (structural duplicates of already-present
    /// entries are skipped).
    pub fn ingest_conventional(&mut self, lib: &MultiplierLibrary) -> usize {
        let funcs = FunctionSet::extended();
        let mut added = 0;
        for e in lib.iter() {
            // Exact-fit grid: the netlist *is* the genotype, no slack. The
            // extended function set covers every `GateKind`, so encoding
            // only fails on truly foreign netlists — skip those.
            let Ok(chromosome) =
                Chromosome::from_netlist(&e.netlist, &funcs, e.netlist.gate_count())
            else {
                continue;
            };
            let netlist = chromosome.decode_active();
            let entry = LibraryEntry {
                name: e.name.clone(),
                digest: netlist_digest(&netlist),
                chromosome,
                netlist,
                op: Operator::Mul,
                width: lib.width(),
                signed: lib.is_signed(),
                provenance: Provenance::Conventional { family: e.family },
            };
            if self.insert(entry) {
                added += 1;
            }
        }
        added
    }

    /// Ingests the conventionally designed approximate adders of
    /// [`apx_arith::adders_approx`] for one unsigned operand width: the
    /// lower-OR family (`k` OR-approximated LSB columns), the truncated
    /// family (`k` dropped LSB columns) and the exact ripple-carry
    /// reference, all indexed under [`Operator::Add`]. Returns how many
    /// new candidates were added (structural duplicates are skipped, as
    /// with every other ingestion path).
    pub fn ingest_conventional_adders(&mut self, width: u32) -> usize {
        let funcs = FunctionSet::extended();
        let mut designs: Vec<(String, Netlist, Family)> =
            vec![("exact_ripple".into(), ripple_carry_adder(width), Family::Exact)];
        for k in 1..=width {
            designs.push((format!("loa_{k}"), lower_or_adder(width, k), Family::LowerOr { k }));
        }
        for k in 1..width {
            designs.push((
                format!("trunc_add_{k}"),
                truncated_adder(width, k),
                Family::Truncated { trunc_cols: k },
            ));
        }
        let mut added = 0;
        for (name, netlist, family) in designs {
            let Ok(chromosome) = Chromosome::from_netlist(&netlist, &funcs, netlist.gate_count())
            else {
                continue;
            };
            let netlist = chromosome.decode_active();
            let entry = LibraryEntry {
                name,
                digest: netlist_digest(&netlist),
                chromosome,
                netlist,
                op: Operator::Add,
                width,
                signed: false,
                provenance: Provenance::Conventional { family },
            };
            if self.insert(entry) {
                added += 1;
            }
        }
        added
    }

    fn insert(&mut self, entry: LibraryEntry) -> bool {
        if self.by_digest.contains_key(&entry.digest) {
            return false;
        }
        self.by_digest.insert(entry.digest, self.entries.len());
        self.entries.push(entry);
        true
    }

    /// Collapses **semantic** duplicates: the stage after structural
    /// dedup. Entries of one `(operator, width, signedness)` class whose
    /// `apx_verify` functional digests agree compute the same function —
    /// wiring permutations, dead nodes and gate-level restructurings of
    /// one circuit — so they would occupy duplicate slots in every
    /// re-scored ranking (identical error statistics under *any*
    /// distribution). Each class is reduced to its selection-preferred
    /// member: the entry the `(area, WMED, name)` ranking would list
    /// first, i.e. minimal technology area under `tech` with ties broken
    /// by name. [`RescoredLibrary::best_meeting`] is therefore provably
    /// unchanged; only redundant seed slots are freed for functionally
    /// distinct candidates.
    ///
    /// Entries whose planes outgrow the semantic node budget keep their
    /// structural identity and are never merged. The exact-replay index
    /// and the rejected list are untouched — key-addressed replays do
    /// not depend on which candidate represents a function class.
    ///
    /// Returns how many entries this call removed; the running total is
    /// [`semantic_dups`](Self::semantic_dups).
    pub fn dedup_semantic(&mut self, tech: &TechLibrary) -> usize {
        let mut classes: HashMap<(Operator, u32, bool, u128), usize> = HashMap::new();
        let mut keep = vec![true; self.entries.len()];
        for (i, entry) in self.entries.iter().enumerate() {
            let Some(fd) = functional_digest(&entry.netlist) else {
                continue; // budget-capped: keep under structural identity
            };
            let class = (entry.op, entry.width, entry.signed, fd);
            match classes.entry(class) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(i);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let j = *o.get();
                    let held = &self.entries[j];
                    let (area_i, area_j) =
                        (area_of(&entry.netlist, tech), area_of(&held.netlist, tech));
                    let prefer_new =
                        area_i.total_cmp(&area_j).then_with(|| entry.name.cmp(&held.name)).is_lt();
                    if prefer_new {
                        keep[j] = false;
                        o.insert(i);
                    } else {
                        keep[i] = false;
                    }
                }
            }
        }
        let removed = keep.iter().filter(|&&k| !k).count();
        if removed > 0 {
            let mut it = keep.iter();
            self.entries.retain(|_| *it.next().expect("one keep flag per entry"));
            self.by_digest = self.entries.iter().enumerate().map(|(i, e)| (e.digest, i)).collect();
            self.semantic_dups += removed;
        }
        removed
    }

    /// Total entries removed by [`dedup_semantic`](Self::dedup_semantic)
    /// over this library's lifetime.
    #[must_use]
    pub fn semantic_dups(&self) -> usize {
        self.semantic_dups
    }

    /// Re-prices every candidate matching the evaluator's component
    /// class (operator, width, signedness) under the evaluator's
    /// distribution: one exhaustive
    /// statistics pass per candidate (fanned out over `threads` pool
    /// workers, bit-identical to a sequential pass) plus the
    /// technology-library area. The returned ranking is a total order, so
    /// selection never depends on thread count or ingestion accidents.
    #[must_use]
    pub fn rescore(
        &self,
        evaluator: &CircuitEvaluator,
        tech: &TechLibrary,
        threads: usize,
    ) -> RescoredLibrary<'_> {
        self.rescore_pruned(evaluator, tech, threads, None)
    }

    /// [`rescore`](Self::rescore) with an optional `apx_verify`
    /// bound-analysis pre-pass: before paying the batched exhaustive
    /// statistics, each candidate gets a provable WMED bracket
    /// ([`wmed_bounds_weighted`]), and a candidate is dropped when it
    /// provably cannot influence any selection the sweep makes under
    /// `policy` — its *lower* bound exceeds every configured threshold
    /// (so it can never be a [`best_meeting`](RescoredLibrary::best_meeting)
    /// hit) **and** at least [`max_seeds`](PrunePolicy::max_seeds) other
    /// candidates are provably strictly better (upper bound below its
    /// lower bound, so it can never be ranked as a
    /// [`seed`](RescoredLibrary::seeds) either). Survivors are re-scored
    /// exactly as [`rescore`](Self::rescore) would — per-candidate
    /// statistics are independent, so pruning provably never changes a
    /// sweep or library result, only skips work.
    ///
    /// The guarantee covers exactly the selections the policy describes —
    /// [`best_meeting`](RescoredLibrary::best_meeting) up to
    /// `max_threshold` and [`seeds`](RescoredLibrary::seeds) up to
    /// `max_seeds`. A [`pareto`](RescoredLibrary::pareto) view over a
    /// pruned ranking may omit small-area/high-error front members;
    /// consumers that need the full front (the cache GC) use the unpruned
    /// [`rescore`](Self::rescore).
    #[must_use]
    pub fn rescore_pruned(
        &self,
        evaluator: &CircuitEvaluator,
        tech: &TechLibrary,
        threads: usize,
        policy: Option<&PrunePolicy>,
    ) -> RescoredLibrary<'_> {
        let mut matching: Vec<&LibraryEntry> = self
            .candidates(evaluator.operator(), evaluator.width(), evaluator.is_signed())
            .collect();
        let mut pruned = 0;
        if let Some(policy) = policy {
            // With `max_seeds` or fewer candidates nothing can ever be
            // dropped, so skip the bound pass entirely.
            if matching.len() > policy.max_seeds {
                let bounds: Vec<_> = matching
                    .iter()
                    .map(|e| {
                        wmed_bounds_weighted(
                            &e.netlist,
                            evaluator.operator(),
                            evaluator.width(),
                            evaluator.is_signed(),
                            evaluator.weights(),
                        )
                    })
                    .collect();
                let keep: Vec<bool> = bounds
                    .iter()
                    .map(|b| {
                        if b.wmed_lo <= policy.max_threshold {
                            return true;
                        }
                        let provably_better =
                            bounds.iter().filter(|o| o.wmed_hi < b.wmed_lo).count();
                        provably_better < policy.max_seeds
                    })
                    .collect();
                let mut it = keep.iter();
                matching.retain(|_| *it.next().expect("one keep flag per candidate"));
                pruned = keep.iter().filter(|&&k| !k).count();
            }
        }
        let netlists: Vec<Netlist> = matching.iter().map(|e| e.netlist.clone()).collect();
        let stats = evaluator.stats_batch(&netlists, threads);
        let mut candidates: Vec<RescoredCandidate<'_>> = matching
            .into_iter()
            .zip(stats)
            .map(|(entry, stats)| RescoredCandidate {
                area: area_of(&entry.netlist, tech),
                entry,
                stats,
            })
            .collect();
        candidates.sort_by(|a, b| {
            a.area
                .total_cmp(&b.area)
                .then_with(|| a.stats.wmed.total_cmp(&b.stats.wmed))
                .then_with(|| a.entry.name.cmp(&b.entry.name))
        });
        RescoredLibrary { candidates, pruned }
    }
}

/// What a sweep will ever ask of a re-scored library — the facts that
/// make bound-based pruning ([`ComponentLibrary::rescore_pruned`]) safe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrunePolicy {
    /// The loosest threshold any task of the sweep runs under: a
    /// candidate whose provable WMED lower bound exceeds this can never
    /// be taken as a hit.
    pub max_threshold: f64,
    /// [`LibraryConfig::max_seeds`](crate::LibraryConfig::max_seeds): a
    /// candidate with this many provably strictly-better alternatives
    /// can never be offered as a seed.
    pub max_seeds: usize,
}

/// One candidate re-priced under a specific distribution.
#[derive(Debug, Clone)]
pub struct RescoredCandidate<'a> {
    /// The underlying library candidate (with its provenance).
    pub entry: &'a LibraryEntry,
    /// Exhaustive error statistics under the re-scoring distribution —
    /// bit-identical to what [`run_sweep`](crate::run_sweep) would report
    /// for the same chromosome.
    pub stats: ErrorStats,
    /// Technology-library area of the candidate's active netlist (the
    /// cost axis of Eq. 1).
    pub area: f64,
}

/// A [`ComponentLibrary`] re-priced under one distribution: candidates in
/// ascending `(area, WMED bits, name)` order.
#[derive(Debug, Clone)]
pub struct RescoredLibrary<'a> {
    candidates: Vec<RescoredCandidate<'a>>,
    pruned: usize,
}

impl<'a> RescoredLibrary<'a> {
    /// All re-scored candidates, cheapest first.
    #[must_use]
    pub fn candidates(&self) -> &[RescoredCandidate<'a>] {
        &self.candidates
    }

    /// How many candidates the bound-analysis pre-pass of
    /// [`ComponentLibrary::rescore_pruned`] dropped before the batched
    /// statistics (always 0 for a plain [`ComponentLibrary::rescore`]).
    #[must_use]
    pub fn pruned(&self) -> usize {
        self.pruned
    }

    /// The cheapest candidate whose re-scored WMED meets `threshold` —
    /// the library-hit rule: taking it satisfies the task's Eq. 1
    /// constraint with zero evolutions.
    #[must_use]
    pub fn best_meeting(&self, threshold: f64) -> Option<&RescoredCandidate<'a>> {
        self.candidates.iter().find(|c| c.stats.wmed <= threshold)
    }

    /// Up to `max` seed candidates for a CGP run constrained by
    /// `threshold`: candidates meeting the budget first (cheapest first —
    /// each is a feasible, finite-fitness starting point), then the
    /// near-misses by ascending WMED. Deterministic like every ranking
    /// here.
    #[must_use]
    pub fn seeds(&self, threshold: f64, max: usize) -> Vec<&RescoredCandidate<'a>> {
        let mut ranked: Vec<&RescoredCandidate<'a>> = self.candidates.iter().collect();
        ranked.sort_by(|a, b| {
            let (fa, fb) = (a.stats.wmed <= threshold, b.stats.wmed <= threshold);
            fb.cmp(&fa)
                .then_with(|| {
                    if fa && fb {
                        a.area.total_cmp(&b.area)
                    } else {
                        a.stats.wmed.total_cmp(&b.stats.wmed)
                    }
                })
                .then_with(|| a.entry.name.cmp(&b.entry.name))
        });
        ranked.truncate(max);
        ranked
    }

    /// The `(WMED, area)` Pareto front of this distribution's re-scored
    /// library, provenance preserved — the autoAx-style per-distribution
    /// trade-off view.
    #[must_use]
    pub fn pareto(&self) -> Vec<&RescoredCandidate<'a>> {
        let points: Vec<(f64, f64)> =
            self.candidates.iter().map(|c| (c.stats.wmed, c.area)).collect();
        pareto_indices(&points).into_iter().map(|i| &self.candidates[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_dist::Pmf;

    fn evoapprox4() -> ComponentLibrary {
        let mut lib = ComponentLibrary::new();
        lib.ingest_conventional(&MultiplierLibrary::truncated_family(4));
        lib
    }

    #[test]
    fn conventional_ingestion_unifies_and_deduplicates() {
        let mut lib = evoapprox4();
        let n = lib.len();
        assert!(n > 4, "truncated family should yield several candidates");
        // Re-ingesting the same family adds nothing (structural dedup).
        assert_eq!(lib.ingest_conventional(&MultiplierLibrary::truncated_family(4)), 0);
        assert_eq!(lib.len(), n);
        // A different width lands in a different index slice.
        assert!(lib.ingest_conventional(&MultiplierLibrary::truncated_family(3)) > 0);
        assert_eq!(lib.candidates(Operator::Mul, 4, false).count(), n);
        assert!(lib.candidates(Operator::Mul, 3, false).count() > 0);
        assert_eq!(lib.candidates(Operator::Mul, 4, true).count(), 0, "signedness separates");
        for e in lib.entries() {
            assert!(matches!(e.provenance, Provenance::Conventional { .. }));
            // The chromosome and phenotype agree by construction.
            assert_eq!(netlist_digest(&e.chromosome.decode_active()), e.digest);
        }
    }

    #[test]
    fn conventional_adders_land_under_the_add_operator() {
        let mut lib = evoapprox4();
        let n_mul = lib.candidates(Operator::Mul, 4, false).count();
        let added = lib.ingest_conventional_adders(4);
        assert!(added > 4, "adder families should yield several candidates, got {added}");
        // Re-ingesting adds nothing (structural dedup).
        assert_eq!(lib.ingest_conventional_adders(4), 0);
        // The operator axis separates: multipliers are untouched, adders
        // only show up under `Operator::Add`.
        assert_eq!(lib.candidates(Operator::Mul, 4, false).count(), n_mul);
        assert_eq!(lib.candidates(Operator::Add, 4, false).count(), added);
        assert_eq!(lib.candidates(Operator::Add, 4, true).count(), 0);
        let mut saw_loa = false;
        let mut saw_trunc = false;
        for e in lib.candidates(Operator::Add, 4, false) {
            assert_eq!(e.netlist.num_inputs(), 8);
            assert_eq!(e.netlist.num_outputs(), 5);
            match e.provenance {
                Provenance::Conventional { family: Family::LowerOr { .. } } => saw_loa = true,
                Provenance::Conventional { family: Family::Truncated { .. } } => saw_trunc = true,
                _ => {}
            }
        }
        assert!(saw_loa && saw_trunc);
        // The exact ripple adder re-scores to zero WMED; approximations
        // rank above it by error.
        let eval =
            CircuitEvaluator::for_operator(Operator::Add, 4, false, &Pmf::uniform(4)).unwrap();
        let rescored = lib.rescore(&eval, &TechLibrary::nangate45(), 2);
        assert_eq!(rescored.candidates().len(), added);
        let exact = rescored.candidates().iter().find(|c| c.entry.name == "exact_ripple").unwrap();
        assert_eq!(exact.stats.wmed, 0.0);
        assert!(rescored.candidates().iter().any(|c| c.stats.wmed > 0.0));
    }

    #[test]
    fn digest_ignores_dead_nodes_but_separates_structures() {
        let nl = apx_arith::array_multiplier(3);
        let chrom =
            Chromosome::from_netlist(&nl, &FunctionSet::extended(), nl.gate_count() + 30).unwrap();
        // Same circuit on a padded grid: digest unchanged.
        assert_eq!(netlist_digest(&nl), netlist_digest(&chrom.decode_active()));
        assert_ne!(netlist_digest(&nl), netlist_digest(&apx_arith::truncated_multiplier(3, 1)));
    }

    #[test]
    fn rescoring_ranks_deterministically_and_fronts_are_nondominated() {
        let lib = evoapprox4();
        let pmf = Pmf::half_normal(4, 3.0);
        let eval = CircuitEvaluator::new(4, false, &pmf).unwrap();
        let tech = TechLibrary::nangate45();
        let a = lib.rescore(&eval, &tech, 1);
        let b = lib.rescore(&eval, &tech, 4);
        assert_eq!(a.candidates().len(), lib.len());
        for (x, y) in a.candidates().iter().zip(b.candidates()) {
            assert_eq!(x.entry.name, y.entry.name, "thread count changed the ranking");
            assert_eq!(x.stats.wmed.to_bits(), y.stats.wmed.to_bits());
            assert_eq!(x.area.to_bits(), y.area.to_bits());
        }
        // Sorted cheapest-first.
        for w in a.candidates().windows(2) {
            assert!(w[0].area <= w[1].area);
        }
        // Every candidate re-scored under an evaluator is *really* its
        // WMED: the exact multiplier scores zero.
        let exact = a.candidates().iter().find(|c| c.entry.name == "exact_array").unwrap();
        assert_eq!(exact.stats.wmed, 0.0);
        // Pareto front: no member dominated by any candidate.
        let front = a.pareto();
        assert!(!front.is_empty());
        for f in &front {
            for c in a.candidates() {
                assert!(
                    !(c.stats.wmed <= f.stats.wmed
                        && c.area <= f.area
                        && (c.stats.wmed < f.stats.wmed || c.area < f.area)),
                    "{} dominates front member {}",
                    c.entry.name,
                    f.entry.name
                );
            }
        }
    }

    #[test]
    fn hit_and_seed_selection_respect_the_threshold() {
        let lib = evoapprox4();
        let eval = CircuitEvaluator::new(4, false, &Pmf::uniform(4)).unwrap();
        let tech = TechLibrary::nangate45();
        let rescored = lib.rescore(&eval, &tech, 2);
        // A generous budget admits an approximate (cheaper-than-exact)
        // candidate; the hit is the cheapest admissible one.
        let hit = rescored.best_meeting(0.05).expect("loose budget must hit");
        assert!(hit.stats.wmed <= 0.05);
        for c in rescored.candidates() {
            if c.stats.wmed <= 0.05 {
                assert!(hit.area <= c.area);
            }
        }
        // An impossible budget hits nothing but still yields seeds, the
        // nearest-miss first.
        assert!(rescored.best_meeting(-1.0).is_none());
        let seeds = rescored.seeds(-1.0, 3);
        assert_eq!(seeds.len(), 3);
        for w in seeds.windows(2) {
            assert!(w[0].stats.wmed <= w[1].stats.wmed);
        }
        // Feasible seeds come before infeasible ones.
        let mid = rescored.candidates()[rescored.candidates().len() / 2].stats.wmed;
        let seeded = rescored.seeds(mid, rescored.candidates().len());
        let first_infeasible =
            seeded.iter().position(|c| c.stats.wmed > mid).unwrap_or(seeded.len());
        assert!(seeded[..first_infeasible].iter().all(|c| c.stats.wmed <= mid));
        assert!(seeded[first_infeasible..].iter().all(|c| c.stats.wmed > mid));
    }

    /// A scanned entry whose netlist drives every output to a fixed bit
    /// of `pattern` — analytically predictable WMED, tight verify bounds.
    fn constant_scanned(op: Operator, width: u32, pattern: u64, salt: u64) -> ScannedEntry {
        let mut b = apx_gates::NetlistBuilder::new(op.num_inputs(width));
        let zero = b.const0();
        let one = b.const1();
        let outs: Vec<_> = (0..op.num_outputs(width))
            .map(|k| if (pattern >> k) & 1 == 1 { one } else { zero })
            .collect();
        b.outputs(&outs);
        let netlist = b.finish().unwrap();
        let mut entry = scanned_from(op, width, netlist, salt);
        entry.circuit.name = format!("const_{pattern}");
        entry
    }

    fn scanned_from(op: Operator, width: u32, netlist: Netlist, salt: u64) -> ScannedEntry {
        let funcs = FunctionSet::extended();
        let chromosome = Chromosome::from_netlist(&netlist, &funcs, netlist.gate_count()).unwrap();
        let netlist = chromosome.decode_active();
        ScannedEntry {
            key: crate::cache::task_key(
                &crate::flow::FlowConfig::default(),
                &Pmf::uniform(8),
                0.25,
                0,
                salt,
            ),
            op,
            width,
            signed: false,
            circuit: EvolvedCircuit {
                name: format!("scan_{salt}"),
                chromosome,
                netlist,
                threshold: 0.25,
                run: 0,
                stats: ErrorStats {
                    med: 0.0,
                    wmed: 0.0,
                    wce: 0.0,
                    error_rate: 0.0,
                    mred: 0.0,
                    max_abs_error: 0,
                },
                estimate: apx_techlib::CircuitEstimate {
                    area_um2: 0.0,
                    delay_ns: 0.0,
                    leakage_uw: 0.0,
                    dynamic_uw: 0.0,
                    clock_mhz: 0.0,
                },
                evaluations: 1,
            },
        }
    }

    #[test]
    fn ingest_gate_rejects_invalid_netlists_with_named_diagnostics() {
        // A (Mul, 3) entry must have 6 outputs; hand it a 4-output
        // netlist and the static gate must refuse it with a *named*
        // diagnosis — no candidate, no exact-replay index entry.
        let mut b = apx_gates::NetlistBuilder::new(6);
        let x = b.input(0);
        let y = b.input(1);
        let g = b.and(x, y);
        b.outputs(&[g, x, y, g]);
        let bad = scanned_from(Operator::Mul, 3, b.finish().unwrap(), 1);
        let bad_key = bad.key;

        let mut lib = ComponentLibrary::new();
        assert!(!lib.ingest_scanned(bad));
        assert!(lib.is_empty(), "a rejected entry must not become a candidate");
        assert!(
            lib.exact_match(bad_key, Operator::Mul, 3, false).is_none(),
            "a rejected entry must not be replayable either"
        );
        assert_eq!(lib.rejected().len(), 1);
        let (key, diags) = &lib.rejected()[0];
        assert_eq!(*key, bad_key);
        assert!(
            diags.iter().any(|d| d.name() == "output-arity"),
            "the rejection names its diagnosis: {diags:?}"
        );

        // A contract-clean entry sails through the same gate.
        let good = constant_scanned(Operator::Mul, 3, 0, 2);
        let good_key = good.key;
        assert!(lib.ingest_scanned(good));
        assert_eq!(lib.len(), 1);
        assert!(lib.exact_match(good_key, Operator::Mul, 3, false).is_some());
        assert_eq!(lib.rejected().len(), 1, "accepting an entry does not grow the reject log");
    }

    #[test]
    fn structural_hash_matches_the_library_digest() {
        // The verify crate's canonical hash and the library's dedup
        // digest must agree bit for bit — otherwise an audit and the
        // dedup would disagree about circuit identity.
        let mut rng = apx_rng::Xoshiro256::from_seed(77);
        let samples = [
            apx_arith::array_multiplier(4),
            apx_arith::truncated_multiplier(4, 2),
            ripple_carry_adder(5),
            lower_or_adder(4, 2),
            Chromosome::random(6, 4, 25, &FunctionSet::extended(), &mut rng).decode_active(),
        ];
        for nl in &samples {
            assert_eq!(apx_verify::structural_hash(nl), netlist_digest(nl));
        }
    }

    #[test]
    fn bound_pruning_drops_provably_useless_candidates_without_changing_selections() {
        // Constant "multipliers" over 3-bit operands: WMED of pattern c
        // is E|a*b - c| / 2^6, so the all-ones pattern (~0.79) towers
        // over the low patterns (~0.2) — and the verify bounds on
        // constant circuits are tight, so the all-ones candidate is
        // provably hopeless for a 0.02-threshold sweep with 2 seeds.
        let mut lib = ComponentLibrary::new();
        for (i, pattern) in [63u64, 0, 1, 2, 3, 4, 5].into_iter().enumerate() {
            assert!(lib.ingest_scanned(constant_scanned(Operator::Mul, 3, pattern, 10 + i as u64)));
        }
        let eval =
            CircuitEvaluator::for_operator(Operator::Mul, 3, false, &Pmf::uniform(3)).unwrap();
        let tech = TechLibrary::nangate45();
        let policy = PrunePolicy { max_threshold: 0.02, max_seeds: 2 };

        let full = lib.rescore(&eval, &tech, 2);
        let pruned = lib.rescore_pruned(&eval, &tech, 2, Some(&policy));
        assert_eq!(full.pruned(), 0);
        assert!(pruned.pruned() >= 1, "the all-ones candidate must be pruned");
        assert_eq!(pruned.candidates().len() + pruned.pruned(), full.candidates().len());
        assert!(
            pruned.candidates().iter().all(|c| c.entry.name != "const_63"),
            "const_63 is the provably hopeless candidate"
        );

        // Every selection the policy covers is identical, bit for bit.
        for threshold in [0.0, 0.01, 0.02] {
            match (full.best_meeting(threshold), pruned.best_meeting(threshold)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.entry.name, b.entry.name);
                    assert_eq!(a.stats.wmed.to_bits(), b.stats.wmed.to_bits());
                }
                (a, b) => panic!("hit divergence at {threshold}: {a:?} vs {b:?}"),
            }
            let (fs, ps) = (full.seeds(threshold, 2), pruned.seeds(threshold, 2));
            assert_eq!(fs.len(), ps.len());
            for (a, b) in fs.iter().zip(&ps) {
                assert_eq!(a.entry.name, b.entry.name, "seed divergence at {threshold}");
                assert_eq!(a.stats, b.stats);
                assert_eq!(a.area.to_bits(), b.area.to_bits());
            }
        }

        // Survivor statistics are bit-identical to the unpruned pass
        // (per-candidate evaluation is independent of batch membership).
        for p in pruned.candidates() {
            let f = full
                .candidates()
                .iter()
                .find(|c| c.entry.name == p.entry.name)
                .expect("survivors are a subset");
            assert_eq!(f.stats, p.stats);
        }

        // A policy that cannot prune (enough seeds wanted) is a no-op.
        let lax = PrunePolicy { max_threshold: 0.02, max_seeds: lib.len() };
        assert_eq!(lib.rescore_pruned(&eval, &tech, 2, Some(&lax)).pruned(), 0);
    }
}
