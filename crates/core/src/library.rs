//! Component-library mode: autoAx-style reuse of already-built
//! circuits across design-space explorations.
//!
//! A paper-scale sweep re-runs CGP from scratch for every `(distribution,
//! threshold)` point, yet the expensive artifact — an approximate
//! multiplier, adder or MAC — does not care which distribution it was
//! evolved under:
//! its WMED under a *new* [`Pmf`] is one exhaustive [`CircuitEvaluator`]
//! pass, no evolution at all (this is exactly the cheap re-scoring that
//! makes autoAx-style library reuse work; Mrazek et al., DAC'19). This
//! module turns the per-task [`crate::cache`] into such a reusable
//! library:
//!
//! * [`ComponentLibrary`] scans a cache directory
//!   ([`SweepCache::scan`]), deduplicates harvested chromosomes by a
//!   structural digest of their active netlist, ingests conventionally
//!   designed circuits — the [`apx_approxlib`] multipliers and the
//!   approximate adders of [`apx_arith::adders_approx`] — through the
//!   same unified [`LibraryEntry`] form, and indexes everything by
//!   `(operator, width, signedness)`;
//! * [`ComponentLibrary::rescore`] re-prices every matching candidate
//!   under the current sweep's distribution — full [`ErrorStats`] via
//!   the batched evaluator ([`CircuitEvaluator::stats_batch`], fanned out
//!   on `apx_pool`) plus the technology-library area — yielding a
//!   [`RescoredLibrary`]: a deterministic ranking with a per-
//!   distribution Pareto front of `(WMED, area)` that keeps each
//!   candidate's [`Provenance`];
//! * [`run_sweep`](crate::run_sweep) consults the result (see
//!   [`LibraryConfig`](crate::LibraryConfig)): a candidate already
//!   meeting a task's threshold is taken directly (`library_hits`),
//!   otherwise the best candidates seed the CGP population
//!   ([`apx_cgp::evolve_seeded`], `seeded_evolutions`) instead of every
//!   run starting from the operator's exact seed circuit.
//!
//! Determinism is preserved end to end: scans are key-sorted (never
//! filesystem order), re-scoring is bit-identical to the sweep's own
//! statistics pass for any thread count, and all rankings are total
//! orders (ties broken by error bits, then name). An empty library is a
//! guaranteed no-op: the sweep behaves bit-for-bit as if library mode
//! were off.

use crate::cache::{CacheKey, ScannedEntry, SweepCache};
use crate::flow::EvolvedCircuit;
use crate::pareto_indices;
use apx_approxlib::{Family, MultiplierLibrary};
use apx_arith::{lower_or_adder, ripple_carry_adder, truncated_adder, Operator};
use apx_cgp::{Chromosome, FunctionSet};
use apx_dist::{fnv1a64, FNV1A64_OFFSET};
use apx_gates::Netlist;
use apx_metrics::{CircuitEvaluator, ErrorStats};
use apx_techlib::{area_of, TechLibrary};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// Which exploration produced a library candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Harvested from a sweep-cache entry: a CGP run checkpointed under
    /// `source_key` by some earlier (possibly differently-distributed)
    /// exploration.
    Evolved {
        /// The content-addressed key the entry was stored under.
        source_key: CacheKey,
    },
    /// A conventionally designed circuit: an [`apx_approxlib`]
    /// multiplier (truncated, broken-array, zero-guarded, … — the
    /// paper's §IV baselines) or an [`apx_arith::adders_approx`] adder
    /// (lower-OR, truncated).
    Conventional {
        /// The approxlib construction family.
        family: Family,
    },
}

/// One candidate of a [`ComponentLibrary`] — the unified form behind
/// which evolved cache entries and conventional [`apx_approxlib`]
/// designs become indistinguishable to the sweep.
#[derive(Debug, Clone)]
pub struct LibraryEntry {
    /// Stable display name (`evo_<key prefix>` or the approxlib name).
    pub name: String,
    /// The genotype: evolved entries keep their stored chromosome;
    /// conventional netlists are encoded onto an exact-fit CGP grid so
    /// they can seed an evolution like any other candidate.
    pub chromosome: Chromosome,
    /// The active-cone phenotype (`chromosome.decode_active()`), the
    /// object every re-scoring pass evaluates.
    pub netlist: Netlist,
    /// The arithmetic operator the candidate implements.
    pub op: Operator,
    /// Operand width in bits.
    pub width: u32,
    /// Two's-complement operand encoding.
    pub signed: bool,
    /// Structural digest of the compacted netlist (dedup identity).
    pub digest: u128,
    /// Where the candidate came from.
    pub provenance: Provenance,
}

/// 128-bit structural digest of a netlist's *compacted* form: dead nodes
/// do not change identity, so a chromosome re-encoded on a wider grid
/// deduplicates against its original.
#[must_use]
pub fn netlist_digest(netlist: &Netlist) -> u128 {
    let compact = netlist.compact();
    let mut canonical = String::new();
    let _ = write!(canonical, "nl {} {}", compact.num_inputs(), compact.num_outputs());
    for node in compact.nodes() {
        let _ = write!(canonical, " {}:{}:{}", node.kind.name(), node.a.0, node.b.0);
    }
    for out in compact.outputs() {
        let _ = write!(canonical, " o{}", out.0);
    }
    let hi = fnv1a64(canonical.as_bytes(), FNV1A64_OFFSET);
    let lo = fnv1a64(canonical.as_bytes(), FNV1A64_OFFSET ^ 0x9E37_79B9_7F4A_7C15);
    (u128::from(hi) << 64) | u128::from(lo)
}

/// A deduplicated, `(operator, width, signedness)`-indexed collection of
/// candidate circuits harvested from sweep caches and conventional
/// libraries.
#[derive(Debug, Clone, Default)]
pub struct ComponentLibrary {
    entries: Vec<LibraryEntry>,
    by_digest: HashMap<u128, usize>,
    /// Full stored task results by cache key, for exact replay: when a
    /// sweep task's own key shows up here, the stored entry *is* what
    /// that task would compute, bit for bit.
    exact: HashMap<CacheKey, (Operator, u32, bool, EvolvedCircuit)>,
}

impl ComponentLibrary {
    /// An empty library.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of deduplicated candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library holds no candidates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All candidates, in deterministic ingestion order.
    pub fn entries(&self) -> impl Iterator<Item = &LibraryEntry> {
        self.entries.iter()
    }

    /// The candidates matching one component class, in deterministic
    /// ingestion order — the `(operator, width, signedness)` index a
    /// sweep draws from.
    pub fn candidates(
        &self,
        op: Operator,
        width: u32,
        signed: bool,
    ) -> impl Iterator<Item = &LibraryEntry> {
        self.entries.iter().filter(move |e| e.op == op && e.width == width && e.signed == signed)
    }

    /// The stored task result for `key`, when this library harvested the
    /// exact entry an `(op, width, signed)` sweep task would compute.
    /// Replaying it is bit-identical to a cache hit (the key is
    /// content-addressed over everything that shapes the result).
    #[must_use]
    pub fn exact_match(
        &self,
        key: CacheKey,
        op: Operator,
        width: u32,
        signed: bool,
    ) -> Option<&EvolvedCircuit> {
        self.exact
            .get(&key)
            .filter(|(o, w, s, _)| *o == op && *w == width && *s == signed)
            .map(|(_, _, _, m)| m)
    }

    /// Harvests every intact entry of the sweep cache at `dir`
    /// (deduplicating against what is already present) and returns how
    /// many new candidates were added. A missing directory adds nothing.
    pub fn scan_cache(&mut self, dir: impl AsRef<Path>) -> usize {
        let mut added = 0;
        for scanned in SweepCache::new(dir.as_ref()).scan() {
            if self.ingest_scanned(scanned) {
                added += 1;
            }
        }
        added
    }

    /// Ingests one already-[`scan`](SweepCache::scan)ned cache entry —
    /// the building block of [`scan_cache`](Self::scan_cache), exposed so
    /// callers that have a scan in hand (the garbage collector of
    /// [`crate::cache`], a future persisted-front loader) can build a
    /// library without re-reading the directory. Returns whether the
    /// entry became a *new* candidate (structural duplicates only extend
    /// the exact-replay index).
    ///
    /// Ingestion order matters for provenance: when several keys store
    /// structurally identical netlists, the first ingested key becomes
    /// the candidate's `source_key`, exactly as in a (key-sorted)
    /// directory scan.
    pub fn ingest_scanned(&mut self, scanned: ScannedEntry) -> bool {
        let name = format!("evo_{}", &scanned.key.hex()[..12]);
        let entry = LibraryEntry {
            name,
            digest: netlist_digest(&scanned.circuit.netlist),
            chromosome: scanned.circuit.chromosome.clone(),
            netlist: scanned.circuit.netlist.clone(),
            op: scanned.op,
            width: scanned.width,
            signed: scanned.signed,
            provenance: Provenance::Evolved { source_key: scanned.key },
        };
        let added = self.insert(entry);
        self.exact
            .insert(scanned.key, (scanned.op, scanned.width, scanned.signed, scanned.circuit));
        added
    }

    /// Ingests every entry of a conventional [`MultiplierLibrary`] —
    /// truncated, broken-array and zero-guarded designs become seed
    /// candidates exactly like cached evolutions. Returns how many new
    /// candidates were added (structural duplicates of already-present
    /// entries are skipped).
    pub fn ingest_conventional(&mut self, lib: &MultiplierLibrary) -> usize {
        let funcs = FunctionSet::extended();
        let mut added = 0;
        for e in lib.iter() {
            // Exact-fit grid: the netlist *is* the genotype, no slack. The
            // extended function set covers every `GateKind`, so encoding
            // only fails on truly foreign netlists — skip those.
            let Ok(chromosome) =
                Chromosome::from_netlist(&e.netlist, &funcs, e.netlist.gate_count())
            else {
                continue;
            };
            let netlist = chromosome.decode_active();
            let entry = LibraryEntry {
                name: e.name.clone(),
                digest: netlist_digest(&netlist),
                chromosome,
                netlist,
                op: Operator::Mul,
                width: lib.width(),
                signed: lib.is_signed(),
                provenance: Provenance::Conventional { family: e.family },
            };
            if self.insert(entry) {
                added += 1;
            }
        }
        added
    }

    /// Ingests the conventionally designed approximate adders of
    /// [`apx_arith::adders_approx`] for one unsigned operand width: the
    /// lower-OR family (`k` OR-approximated LSB columns), the truncated
    /// family (`k` dropped LSB columns) and the exact ripple-carry
    /// reference, all indexed under [`Operator::Add`]. Returns how many
    /// new candidates were added (structural duplicates are skipped, as
    /// with every other ingestion path).
    pub fn ingest_conventional_adders(&mut self, width: u32) -> usize {
        let funcs = FunctionSet::extended();
        let mut designs: Vec<(String, Netlist, Family)> =
            vec![("exact_ripple".into(), ripple_carry_adder(width), Family::Exact)];
        for k in 1..=width {
            designs.push((format!("loa_{k}"), lower_or_adder(width, k), Family::LowerOr { k }));
        }
        for k in 1..width {
            designs.push((
                format!("trunc_add_{k}"),
                truncated_adder(width, k),
                Family::Truncated { trunc_cols: k },
            ));
        }
        let mut added = 0;
        for (name, netlist, family) in designs {
            let Ok(chromosome) = Chromosome::from_netlist(&netlist, &funcs, netlist.gate_count())
            else {
                continue;
            };
            let netlist = chromosome.decode_active();
            let entry = LibraryEntry {
                name,
                digest: netlist_digest(&netlist),
                chromosome,
                netlist,
                op: Operator::Add,
                width,
                signed: false,
                provenance: Provenance::Conventional { family },
            };
            if self.insert(entry) {
                added += 1;
            }
        }
        added
    }

    fn insert(&mut self, entry: LibraryEntry) -> bool {
        if self.by_digest.contains_key(&entry.digest) {
            return false;
        }
        self.by_digest.insert(entry.digest, self.entries.len());
        self.entries.push(entry);
        true
    }

    /// Re-prices every candidate matching the evaluator's component
    /// class (operator, width, signedness) under the evaluator's
    /// distribution: one exhaustive
    /// statistics pass per candidate (fanned out over `threads` pool
    /// workers, bit-identical to a sequential pass) plus the
    /// technology-library area. The returned ranking is a total order, so
    /// selection never depends on thread count or ingestion accidents.
    #[must_use]
    pub fn rescore(
        &self,
        evaluator: &CircuitEvaluator,
        tech: &TechLibrary,
        threads: usize,
    ) -> RescoredLibrary<'_> {
        let matching: Vec<&LibraryEntry> = self
            .candidates(evaluator.operator(), evaluator.width(), evaluator.is_signed())
            .collect();
        let netlists: Vec<Netlist> = matching.iter().map(|e| e.netlist.clone()).collect();
        let stats = evaluator.stats_batch(&netlists, threads);
        let mut candidates: Vec<RescoredCandidate<'_>> = matching
            .into_iter()
            .zip(stats)
            .map(|(entry, stats)| RescoredCandidate {
                area: area_of(&entry.netlist, tech),
                entry,
                stats,
            })
            .collect();
        candidates.sort_by(|a, b| {
            a.area
                .total_cmp(&b.area)
                .then_with(|| a.stats.wmed.total_cmp(&b.stats.wmed))
                .then_with(|| a.entry.name.cmp(&b.entry.name))
        });
        RescoredLibrary { candidates }
    }
}

/// One candidate re-priced under a specific distribution.
#[derive(Debug, Clone)]
pub struct RescoredCandidate<'a> {
    /// The underlying library candidate (with its provenance).
    pub entry: &'a LibraryEntry,
    /// Exhaustive error statistics under the re-scoring distribution —
    /// bit-identical to what [`run_sweep`](crate::run_sweep) would report
    /// for the same chromosome.
    pub stats: ErrorStats,
    /// Technology-library area of the candidate's active netlist (the
    /// cost axis of Eq. 1).
    pub area: f64,
}

/// A [`ComponentLibrary`] re-priced under one distribution: candidates in
/// ascending `(area, WMED bits, name)` order.
#[derive(Debug, Clone)]
pub struct RescoredLibrary<'a> {
    candidates: Vec<RescoredCandidate<'a>>,
}

impl<'a> RescoredLibrary<'a> {
    /// All re-scored candidates, cheapest first.
    #[must_use]
    pub fn candidates(&self) -> &[RescoredCandidate<'a>] {
        &self.candidates
    }

    /// The cheapest candidate whose re-scored WMED meets `threshold` —
    /// the library-hit rule: taking it satisfies the task's Eq. 1
    /// constraint with zero evolutions.
    #[must_use]
    pub fn best_meeting(&self, threshold: f64) -> Option<&RescoredCandidate<'a>> {
        self.candidates.iter().find(|c| c.stats.wmed <= threshold)
    }

    /// Up to `max` seed candidates for a CGP run constrained by
    /// `threshold`: candidates meeting the budget first (cheapest first —
    /// each is a feasible, finite-fitness starting point), then the
    /// near-misses by ascending WMED. Deterministic like every ranking
    /// here.
    #[must_use]
    pub fn seeds(&self, threshold: f64, max: usize) -> Vec<&RescoredCandidate<'a>> {
        let mut ranked: Vec<&RescoredCandidate<'a>> = self.candidates.iter().collect();
        ranked.sort_by(|a, b| {
            let (fa, fb) = (a.stats.wmed <= threshold, b.stats.wmed <= threshold);
            fb.cmp(&fa)
                .then_with(|| {
                    if fa && fb {
                        a.area.total_cmp(&b.area)
                    } else {
                        a.stats.wmed.total_cmp(&b.stats.wmed)
                    }
                })
                .then_with(|| a.entry.name.cmp(&b.entry.name))
        });
        ranked.truncate(max);
        ranked
    }

    /// The `(WMED, area)` Pareto front of this distribution's re-scored
    /// library, provenance preserved — the autoAx-style per-distribution
    /// trade-off view.
    #[must_use]
    pub fn pareto(&self) -> Vec<&RescoredCandidate<'a>> {
        let points: Vec<(f64, f64)> =
            self.candidates.iter().map(|c| (c.stats.wmed, c.area)).collect();
        pareto_indices(&points).into_iter().map(|i| &self.candidates[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_dist::Pmf;

    fn evoapprox4() -> ComponentLibrary {
        let mut lib = ComponentLibrary::new();
        lib.ingest_conventional(&MultiplierLibrary::truncated_family(4));
        lib
    }

    #[test]
    fn conventional_ingestion_unifies_and_deduplicates() {
        let mut lib = evoapprox4();
        let n = lib.len();
        assert!(n > 4, "truncated family should yield several candidates");
        // Re-ingesting the same family adds nothing (structural dedup).
        assert_eq!(lib.ingest_conventional(&MultiplierLibrary::truncated_family(4)), 0);
        assert_eq!(lib.len(), n);
        // A different width lands in a different index slice.
        assert!(lib.ingest_conventional(&MultiplierLibrary::truncated_family(3)) > 0);
        assert_eq!(lib.candidates(Operator::Mul, 4, false).count(), n);
        assert!(lib.candidates(Operator::Mul, 3, false).count() > 0);
        assert_eq!(lib.candidates(Operator::Mul, 4, true).count(), 0, "signedness separates");
        for e in lib.entries() {
            assert!(matches!(e.provenance, Provenance::Conventional { .. }));
            // The chromosome and phenotype agree by construction.
            assert_eq!(netlist_digest(&e.chromosome.decode_active()), e.digest);
        }
    }

    #[test]
    fn conventional_adders_land_under_the_add_operator() {
        let mut lib = evoapprox4();
        let n_mul = lib.candidates(Operator::Mul, 4, false).count();
        let added = lib.ingest_conventional_adders(4);
        assert!(added > 4, "adder families should yield several candidates, got {added}");
        // Re-ingesting adds nothing (structural dedup).
        assert_eq!(lib.ingest_conventional_adders(4), 0);
        // The operator axis separates: multipliers are untouched, adders
        // only show up under `Operator::Add`.
        assert_eq!(lib.candidates(Operator::Mul, 4, false).count(), n_mul);
        assert_eq!(lib.candidates(Operator::Add, 4, false).count(), added);
        assert_eq!(lib.candidates(Operator::Add, 4, true).count(), 0);
        let mut saw_loa = false;
        let mut saw_trunc = false;
        for e in lib.candidates(Operator::Add, 4, false) {
            assert_eq!(e.netlist.num_inputs(), 8);
            assert_eq!(e.netlist.num_outputs(), 5);
            match e.provenance {
                Provenance::Conventional { family: Family::LowerOr { .. } } => saw_loa = true,
                Provenance::Conventional { family: Family::Truncated { .. } } => saw_trunc = true,
                _ => {}
            }
        }
        assert!(saw_loa && saw_trunc);
        // The exact ripple adder re-scores to zero WMED; approximations
        // rank above it by error.
        let eval =
            CircuitEvaluator::for_operator(Operator::Add, 4, false, &Pmf::uniform(4)).unwrap();
        let rescored = lib.rescore(&eval, &TechLibrary::nangate45(), 2);
        assert_eq!(rescored.candidates().len(), added);
        let exact = rescored.candidates().iter().find(|c| c.entry.name == "exact_ripple").unwrap();
        assert_eq!(exact.stats.wmed, 0.0);
        assert!(rescored.candidates().iter().any(|c| c.stats.wmed > 0.0));
    }

    #[test]
    fn digest_ignores_dead_nodes_but_separates_structures() {
        let nl = apx_arith::array_multiplier(3);
        let chrom =
            Chromosome::from_netlist(&nl, &FunctionSet::extended(), nl.gate_count() + 30).unwrap();
        // Same circuit on a padded grid: digest unchanged.
        assert_eq!(netlist_digest(&nl), netlist_digest(&chrom.decode_active()));
        assert_ne!(netlist_digest(&nl), netlist_digest(&apx_arith::truncated_multiplier(3, 1)));
    }

    #[test]
    fn rescoring_ranks_deterministically_and_fronts_are_nondominated() {
        let lib = evoapprox4();
        let pmf = Pmf::half_normal(4, 3.0);
        let eval = CircuitEvaluator::new(4, false, &pmf).unwrap();
        let tech = TechLibrary::nangate45();
        let a = lib.rescore(&eval, &tech, 1);
        let b = lib.rescore(&eval, &tech, 4);
        assert_eq!(a.candidates().len(), lib.len());
        for (x, y) in a.candidates().iter().zip(b.candidates()) {
            assert_eq!(x.entry.name, y.entry.name, "thread count changed the ranking");
            assert_eq!(x.stats.wmed.to_bits(), y.stats.wmed.to_bits());
            assert_eq!(x.area.to_bits(), y.area.to_bits());
        }
        // Sorted cheapest-first.
        for w in a.candidates().windows(2) {
            assert!(w[0].area <= w[1].area);
        }
        // Every candidate re-scored under an evaluator is *really* its
        // WMED: the exact multiplier scores zero.
        let exact = a.candidates().iter().find(|c| c.entry.name == "exact_array").unwrap();
        assert_eq!(exact.stats.wmed, 0.0);
        // Pareto front: no member dominated by any candidate.
        let front = a.pareto();
        assert!(!front.is_empty());
        for f in &front {
            for c in a.candidates() {
                assert!(
                    !(c.stats.wmed <= f.stats.wmed
                        && c.area <= f.area
                        && (c.stats.wmed < f.stats.wmed || c.area < f.area)),
                    "{} dominates front member {}",
                    c.entry.name,
                    f.entry.name
                );
            }
        }
    }

    #[test]
    fn hit_and_seed_selection_respect_the_threshold() {
        let lib = evoapprox4();
        let eval = CircuitEvaluator::new(4, false, &Pmf::uniform(4)).unwrap();
        let tech = TechLibrary::nangate45();
        let rescored = lib.rescore(&eval, &tech, 2);
        // A generous budget admits an approximate (cheaper-than-exact)
        // candidate; the hit is the cheapest admissible one.
        let hit = rescored.best_meeting(0.05).expect("loose budget must hit");
        assert!(hit.stats.wmed <= 0.05);
        for c in rescored.candidates() {
            if c.stats.wmed <= 0.05 {
                assert!(hit.area <= c.area);
            }
        }
        // An impossible budget hits nothing but still yields seeds, the
        // nearest-miss first.
        assert!(rescored.best_meeting(-1.0).is_none());
        let seeds = rescored.seeds(-1.0, 3);
        assert_eq!(seeds.len(), 3);
        for w in seeds.windows(2) {
            assert!(w[0].stats.wmed <= w[1].stats.wmed);
        }
        // Feasible seeds come before infeasible ones.
        let mid = rescored.candidates()[rescored.candidates().len() / 2].stats.wmed;
        let seeded = rescored.seeds(mid, rescored.candidates().len());
        let first_infeasible =
            seeded.iter().position(|c| c.stats.wmed > mid).unwrap_or(seeded.len());
        assert!(seeded[..first_infeasible].iter().all(|c| c.stats.wmed <= mid));
        assert!(seeded[first_infeasible..].iter().all(|c| c.stats.wmed > mid));
    }
}
