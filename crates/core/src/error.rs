//! Error type of the approximation flow.

use std::fmt;

/// Error raised by the high-level approximation flow.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The CGP layer rejected a seed or chromosome.
    Cgp(apx_cgp::CgpError),
    /// The WMED evaluator could not be constructed.
    Evaluator(apx_metrics::EvaluatorError),
    /// A configuration value is invalid.
    BadConfig(String),
    /// A worker-pool task panicked; the panic was captured at the task
    /// boundary and converted into this error (no poisoned locks).
    WorkerPanic {
        /// Name of the failing task (e.g. `"t3_r1"`).
        task: String,
        /// The captured panic message.
        message: String,
    },
    /// The shard orchestrator could not spawn or supervise a worker
    /// process ([`crate::orchestrate`]). Carries the rendered OS error —
    /// `std::io::Error` is neither `Clone` nor `PartialEq`, which this
    /// enum promises.
    Orchestrate(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Cgp(e) => write!(f, "cgp error: {e}"),
            CoreError::Evaluator(e) => write!(f, "evaluator error: {e}"),
            CoreError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::WorkerPanic { task, message } => {
                write!(f, "worker for task {task} panicked: {message}")
            }
            CoreError::Orchestrate(msg) => write!(f, "orchestrator error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Cgp(e) => Some(e),
            CoreError::Evaluator(e) => Some(e),
            CoreError::BadConfig(_) | CoreError::WorkerPanic { .. } | CoreError::Orchestrate(_) => {
                None
            }
        }
    }
}

impl From<apx_cgp::CgpError> for CoreError {
    fn from(e: apx_cgp::CgpError) -> Self {
        CoreError::Cgp(e)
    }
}

impl From<apx_metrics::EvaluatorError> for CoreError {
    fn from(e: apx_metrics::EvaluatorError) -> Self {
        CoreError::Evaluator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source() {
        let e: CoreError = apx_cgp::CgpError::EmptyFunctionSet.into();
        assert!(e.to_string().contains("cgp"));
        assert!(e.source().is_some());
        assert!(CoreError::BadConfig("x".into()).source().is_none());
    }
}
