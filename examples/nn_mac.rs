//! Case study 2 in miniature: approximate MAC units in a neural classifier.
//!
//! Trains a small MLP on the synthetic MNIST-like set, quantizes it to
//! 8-bit fixed point, measures its weight distribution, and then compares
//! classification accuracy and MAC power for several approximate
//! multipliers — with and without fine-tuning (the paper's Table I flow).
//!
//! Run with: `cargo run --release --example nn_mac`

use distapprox::arith::mac::accumulator_width;
use distapprox::core::nn_flow::{evaluate_multiplier, prepare_case, CaseConfig, CaseKind};
use distapprox::core::report::{signed_percent, TextTable};
use distapprox::core::{mac_metrics, Eq1Fitness};
use distapprox::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Training + quantizing a small MLP on the MNIST-like set...");
    let case = prepare_case(&CaseConfig {
        kind: CaseKind::Mlp { hidden: 32 },
        train_n: 800,
        test_n: 200,
        calib_n: 48,
        epochs: 15,
        lr: 0.03,
        seed: 3,
    });
    println!(
        "  float accuracy {:.1} %, 8-bit quantized accuracy {:.1} %",
        case.float_accuracy * 100.0,
        case.quantized_accuracy * 100.0
    );
    println!(
        "  weight distribution: P(w=0) = {:.3}, P(|w|<=8) = {:.3}\n",
        case.weight_pmf.prob_of(0),
        (-8i64..=8).map(|v| case.weight_pmf.prob_of(v)).sum::<f64>()
    );

    // Evolve one multiplier under the measured weight distribution, and
    // compare against library baselines at a similar error level.
    let budget = 5e-3;
    println!("Evolving an 8-bit signed multiplier at WMED budget 0.5 % ...");
    let cfg = FlowConfig {
        width: 8,
        signed: true,
        thresholds: vec![budget],
        iterations: 1_500,
        seed: 11,
        ..FlowConfig::default()
    };
    let evolved = evolve_circuits(&case.weight_pmf, &cfg)?;
    let evolved_m = &evolved.circuits[0];
    let _ = Eq1Fitness::new(8, true, &case.weight_pmf, TechLibrary::nangate45(), budget)?;

    let exact = baugh_wooley_multiplier(8);
    let acc_width = accumulator_width(8, 784);
    let candidates: Vec<(String, Netlist)> = vec![
        ("evolved (WMED 0.5%)".to_owned(), evolved_m.netlist.clone()),
        ("bw_bam h8 v6".to_owned(), distapprox::arith::baugh_wooley_broken(8, 8, 6)),
        ("bw_bam h8 v8".to_owned(), distapprox::arith::baugh_wooley_broken(8, 8, 8)),
    ];

    let mut table =
        TextTable::new(vec!["multiplier", "acc initial", "acc finetuned", "MAC power", "MAC PDP"]);
    for (name, netlist) in &candidates {
        let tbl = OpTable::from_netlist(netlist, 8, true)?;
        let acc = evaluate_multiplier(&case, &tbl, 2);
        let mac = mac_metrics(netlist, &exact, 8, acc_width, true, &case.weight_pmf, 16, 5);
        table.row(vec![
            name.clone(),
            signed_percent(acc.initial_delta),
            signed_percent(acc.finetuned_delta),
            signed_percent(mac.rel_power),
            signed_percent(mac.rel_pdp),
        ]);
    }
    println!("\nAccuracy/power deltas relative to the exact 8-bit MAC:");
    println!("{}", table.to_text());
    println!(
        "The WMED-evolved multiplier buys the deepest MAC power/PDP savings;\n\
         fine-tuning recovers most of the accuracy it costs (raise the CGP\n\
         iteration budget to shrink the initial drop further — the paper\n\
         spends 10^6 iterations per multiplier, this example spends 1.5k)."
    );
    Ok(())
}
