//! Approximate Gaussian image filtering (the paper's Fig. 5 scenario).
//!
//! Builds a 3×3 Gaussian filter whose nine coefficient multiplications run
//! through approximate multipliers of increasing aggressiveness, and
//! reports PSNR against the exact filter together with estimated power.
//!
//! Run with: `cargo run --release --example gaussian_filter`

use distapprox::core::report::TextTable;
use distapprox::imgproc::{average_filter_psnr, synth, Kernel3};
use distapprox::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = Kernel3::gaussian(1.0);
    println!("3x3 Gaussian kernel (sum = 256): {:?}", kernel.coeffs());
    println!(
        "distinct coefficients {:?} -> the multiplier's x operand is always small\n",
        kernel.distinct_coeffs()
    );

    // 25 synthetic scenes stand in for the paper's 25 test images.
    let images = synth::test_images(25, 64, 64, 2024);

    // The filter's coefficient distribution: only the kernel values occur.
    let mut weights = vec![0.0f64; 256];
    for &c in kernel.coeffs() {
        weights[c as usize] += 1.0;
    }
    let coeff_pmf = Pmf::from_weights(8, weights)?;

    let tech = TechLibrary::nangate45();
    let mut rng = Xoshiro256::from_seed(99);
    let library = MultiplierLibrary::evoapprox_like(8);

    let mut table = TextTable::new(vec!["multiplier", "PSNR [dB]", "power [mW]", "area [um2]"]);
    for entry in library.iter() {
        let psnr = average_filter_psnr(&images, &kernel, &entry.table, 80.0);
        let est = estimate_under_pmf(&entry.netlist, &tech, &coeff_pmf, 1000.0, 32, &mut rng);
        table.row(vec![
            entry.name.clone(),
            format!("{psnr:.2}"),
            format!("{:.4}", est.power_mw()),
            format!("{:.1}", est.area_um2),
        ]);
    }
    println!("{}", table.to_text());
    println!(
        "Multipliers that stay exact for small x (the kernel coefficients)\n\
         keep PSNR high even when they are aggressively wrong elsewhere —\n\
         the effect the paper exploits by evolving for distribution D2."
    );
    Ok(())
}
