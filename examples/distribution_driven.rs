//! Case study 1 in miniature: why the *distribution* matters.
//!
//! Evolves one multiplier per distribution (normal D1, half-normal D2,
//! uniform Du) at the same WMED budget, cross-evaluates every circuit
//! under every distribution and prints the error heat maps — the essence
//! of the paper's Fig. 3 and Fig. 4.
//!
//! Run with: `cargo run --release --example distribution_driven`

use distapprox::core::report::{percent, TextTable};
use distapprox::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 6;
    let budget = 2e-3;
    let iterations = 4_000;
    let distributions = [
        ("D1 (normal)", Pmf::normal(width, 32.0, 8.0)),
        ("D2 (half-normal)", Pmf::half_normal(width, 12.0)),
        ("Du (uniform)", Pmf::uniform(width)),
    ];

    println!(
        "Evolving one {width}-bit multiplier per distribution at WMED budget {}\n",
        percent(budget)
    );
    let mut evolved = Vec::new();
    for (name, pmf) in &distributions {
        let cfg = FlowConfig {
            width,
            thresholds: vec![budget],
            iterations,
            seed: 7,
            ..FlowConfig::default()
        };
        let result = evolve_circuits(pmf, &cfg)?;
        let m = result.circuits.into_iter().next().expect("one run");
        println!(
            "  evolved for {name:<18} area {:7.1} um2, {} gates",
            m.estimate.area_um2,
            m.netlist.active_gate_count()
        );
        evolved.push(((*name).to_string(), m));
    }

    // Cross-evaluation: rows = multipliers, columns = metrics.
    let pmfs: Vec<Pmf> = distributions.iter().map(|(_, p)| p.clone()).collect();
    let mut table = TextTable::new(vec!["evolved for", "WMED_D1", "WMED_D2", "WMED_Du"]);
    for (name, m) in &evolved {
        let wmeds = cross_wmed(&m.netlist, width, false, &pmfs)?;
        table.row(vec![name.clone(), percent(wmeds[0]), percent(wmeds[1]), percent(wmeds[2])]);
    }
    println!("\nCross-evaluation (each circuit under each metric):");
    println!("{}", table.to_text());
    println!("Diagonal entries respect the budget; off-diagonal ones need not —");
    println!("a circuit tuned to D2 happily sacrifices accuracy where D2 says");
    println!("inputs never occur (exactly the paper's Fig. 3 observation).\n");

    // Heat maps (Fig. 4): error of each circuit over the (x, y) plane.
    for (name, m) in &evolved {
        let heat = error_heatmap(&m.netlist, width, false)?;
        println!("error heat map, evolved for {name} (x down, y right):");
        println!("{}", heat.to_ascii(16));
    }
    Ok(())
}
