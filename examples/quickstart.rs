//! Quick start: evolve distribution-tailored approximate multipliers.
//!
//! Evolves 6-bit multipliers under a half-normal operand distribution for
//! three WMED budgets and prints the resulting error/area/power trade-off.
//!
//! Run with: `cargo run --release --example quickstart`

use distapprox::core::report::{percent, TextTable};
use distapprox::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The application tells us operand `x` is usually small: D2-style
    // half-normal distribution (paper Fig. 2, right).
    let width = 6;
    let pmf = Pmf::half_normal(width, 12.0);

    let cfg = FlowConfig {
        width,
        signed: false,
        thresholds: vec![1e-4, 1e-3, 1e-2],
        iterations: 3_000,
        runs_per_threshold: 1,
        seed: 42,
        ..FlowConfig::default()
    };
    println!(
        "Evolving {width}-bit multipliers for a half-normal operand distribution\n\
         ({} CGP generations per WMED budget)...\n",
        cfg.iterations
    );
    let result = evolve_circuits(&pmf, &cfg)?;

    let mut table = TextTable::new(vec![
        "WMED budget",
        "achieved WMED",
        "worst case",
        "gates",
        "area [um2]",
        "power [mW]",
    ]);
    let seed_area = result.seed_estimate.area_um2;
    table.row(vec![
        "exact".to_owned(),
        percent(0.0),
        percent(0.0),
        result.seed_netlist.active_gate_count().to_string(),
        format!("{seed_area:.1}"),
        format!("{:.4}", result.seed_estimate.power_mw()),
    ]);
    for m in &result.circuits {
        table.row(vec![
            percent(m.threshold),
            percent(m.stats.wmed),
            percent(m.stats.wce),
            m.netlist.active_gate_count().to_string(),
            format!("{:.1}", m.estimate.area_um2),
            format!("{:.4}", m.estimate.power_mw()),
        ]);
    }
    println!("{}", table.to_text());
    println!(
        "Every relaxation of the WMED budget buys area/power; the evolved\n\
         circuits stay within budget by construction (Eq. 1 fitness)."
    );
    Ok(())
}
